"""The fault injector: plays a :class:`~repro.faults.plan.FaultPlan`
against a live machine.

Installation (via :meth:`repro.runtime.context.Machine.install_faults`)
resolves every event's symbolic target against the machine's topology
and spawns one driver process per event.  The injector then acts purely
through existing mechanisms:

* capacity windows (degradation, stragglers) go through
  :meth:`~repro.sim.resources.Resource.set_fault_factor` plus a
  :meth:`~repro.sim.flows.FlowNetwork.requery_capacity`, so the
  incremental water-fill re-shares the degraded capacity;
* link-down windows kill crossing flows with
  :class:`~repro.errors.TransientTransferError` and publish the down
  set for the resilient router in :mod:`repro.runtime.memcpy`;
* engine stalls queue on the same DMA-engine semaphores copies use;
* every fault is appended to the machine trace (``Fault:<kind>``
  spans) and to the injector's :attr:`timeline` for reproducibility
  checks.

All randomness (per-flow transient kills) comes from one stream seeded
by the plan, so a given ``(plan, workload)`` pair replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    DeviceFaultError,
    NodeFaultError,
    TransientTransferError,
)
from repro.faults.events import (
    CopyEngineStall,
    GpuFail,
    LinkDegradation,
    LinkDown,
    LinkFlap,
    NodeDown,
    StragglerGpu,
    SwitchDown,
    TransientTransfer,
)
from repro.faults.plan import FaultPlan
from repro.faults.policy import LinkHealth
from repro.hw.cluster import ClusterSpec
from repro.sim.engine import Event, SimulationError
from repro.sim.flows import Flow
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine

#: Flow-label prefixes of copies whose waiters run the resilient retry
#: loop in ``copy_async``; only these are eligible for injected
#: transient kills (killing e.g. a CPU-merge flow would not model a
#: transfer fault, it would just crash the workload).
_RESILIENT_PREFIXES = ("HtoD:", "DtoH:", "PtoP:", "HtoH:")


@dataclass
class FaultRecord:
    """One fault occurrence on the injector's timeline."""

    kind: str
    target: str
    start: float
    #: ``None`` while the window is still open (or for permanent faults).
    end: Optional[float] = None

    def key(self) -> Tuple[str, str, float, Optional[float]]:
        """Hashable identity for reproducibility comparisons."""
        return (self.kind, self.target, self.start, self.end)


class FaultInjector:
    """Drives one fault plan against one machine."""

    def __init__(self, machine: "Machine", plan: FaultPlan):
        self.machine = machine
        self.env = machine.env
        self.plan = plan
        #: Observability recorder (wired by the machine); ``None`` keeps
        #: fault windows untraced beyond the machine trace.
        self.obs = None
        #: Chronological record of every fault that actually fired.
        self.timeline: List[FaultRecord] = []
        #: Down-window bookkeeping: id(resource) -> open window count.
        self._down: Dict[int, int] = {}
        #: id(resource) -> event fired when its last down window ends.
        self._restored: Dict[int, Event] = {}
        #: id(resource) -> stack of active capacity multipliers.
        self._factors: Dict[int, List[float]] = {}
        #: GPUs hard-failed so far (runtime view; the plan is the truth
        #: for :meth:`failed_gpu_ids`, this powers the kill sweep).
        self._failed: Set[int] = set()
        #: gpu id -> event fired the instant the GPU hard-fails (created
        #: lazily by :meth:`fail_event`; kernels race against it).
        self._fail_events: Dict[int, Event] = {}
        #: Cluster nodes hard-lost so far (runtime view; the plan is the
        #: truth for :meth:`failed_node_ids`).
        self._dead_nodes: Set[int] = set()
        #: id(resource) -> health score of every link the plan has ever
        #: taken down (fed by all down windows: link down, switch down,
        #: flaps).  Quarantined links are avoided like down links.
        self.link_health: Dict[int, LinkHealth] = {}
        self._by_name = self._resource_catalog()
        self._rng = np.random.default_rng(plan.seed)
        # Backoff jitter draws come from their own stream so enabling
        # jitter never perturbs the per-flow transient-kill draws (the
        # two would otherwise interleave and break replay comparisons
        # across policies).
        self._jitter_rng = np.random.default_rng(
            (plan.seed if plan.seed is not None else 0) ^ 0x1177E4)
        # Resolve every symbolic target eagerly so a typo in a plan
        # fails at install time, not halfway through a chaos run.
        # Unknown names and out-of-range GPU ids are plan bugs, not
        # topology or runtime-API misuse, so both raise SimulationError
        # (negative ids would otherwise silently hit Python's negative
        # indexing and fault the *wrong* GPU).
        for event in plan.events:
            if isinstance(event, (LinkDegradation, LinkDown, LinkFlap)):
                self._resource(event.resource)
            elif isinstance(event, (CopyEngineStall, StragglerGpu, GpuFail)):
                if not 0 <= event.gpu < machine.num_gpus:
                    raise SimulationError(
                        f"fault plan references unknown GPU {event.gpu} "
                        f"on {machine.spec.name} "
                        f"({machine.num_gpus} GPUs) in {event!r}")
            elif isinstance(event, NodeDown):
                spec = machine.spec
                if not isinstance(spec, ClusterSpec):
                    raise SimulationError(
                        f"fault plan schedules {event!r} but "
                        f"{spec.name} is a single machine, not a "
                        f"cluster; NodeDown needs a ClusterSpec")
                if event.node >= spec.num_nodes:
                    raise SimulationError(
                        f"fault plan references unknown node "
                        f"{event.node} on {spec.name} "
                        f"({spec.num_nodes} nodes) in {event!r}")
            elif isinstance(event, SwitchDown):
                self._switch_target(event.switch)
        for event in plan.events:
            self.env.process(self._drive(event))

    # -- target resolution ------------------------------------------------
    def _resource_catalog(self) -> Dict[str, Resource]:
        catalog: Dict[str, Resource] = {}
        topology = self.machine.spec.topology
        for edge in topology.edges:
            catalog.setdefault(edge.resource.name, edge.resource)
        for node in topology.nodes:
            if node.memory is not None:
                catalog.setdefault(node.memory.name, node.memory)
        return catalog

    def _resource(self, name: str) -> Resource:
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(
                f"fault plan names unknown resource {name!r} on "
                f"{self.machine.spec.name} (known: "
                f"{', '.join(sorted(self._by_name))})") from None

    def _switch_target(self, switch) -> Tuple[str, List[Resource]]:
        """Resolve a :class:`SwitchDown` target to its attached links.

        Accepts an index into the cluster topology's ordered
        fabric-switch list or the switch's vertex name; returns the
        name plus every distinct link resource attached to the switch.
        """
        topology = self.machine.spec.topology
        switches = getattr(topology, "fabric_switches", ())
        if not switches:
            raise SimulationError(
                f"fault plan schedules SwitchDown({switch!r}) but "
                f"{self.machine.spec.name} has no fabric switches "
                "(SwitchDown needs a cluster fabric)")
        if isinstance(switch, int):
            if not 0 <= switch < len(switches):
                raise SimulationError(
                    f"fault plan references fabric switch index "
                    f"{switch} but {self.machine.spec.name} has "
                    f"{len(switches)} switches "
                    f"({', '.join(switches)})")
            name = switches[switch]
        else:
            if switch not in switches:
                raise SimulationError(
                    f"fault plan names unknown fabric switch "
                    f"{switch!r} on {self.machine.spec.name} (known: "
                    f"{', '.join(switches)})")
            name = switch
        resources: List[Resource] = []
        seen: Set[int] = set()
        for edge in topology.edges:
            if ((edge.a == name or edge.b == name)
                    and id(edge.resource) not in seen):
                seen.add(id(edge.resource))
                resources.append(edge.resource)
        return name, resources

    # -- queries used by the resilient runtime and the sorts ---------------
    @property
    def down_ids(self) -> Dict[int, int]:
        """``id(resource)`` of every currently-down resource (read-only)."""
        return self._down

    def restored_event(self, rid: int) -> Event:
        """Event firing when resource ``rid`` leaves its down window(s).

        Already-up resources get an already-succeeded event, so callers
        can ``yield`` it unconditionally.
        """
        if rid not in self._down:
            event = self.env.event()
            event.succeed()
            return event
        return self._restored[rid]

    def failed_gpu_ids(self) -> Set[int]:
        """GPUs hard-failed at or before the current simulated time.

        A :class:`NodeDown` counts as one :class:`GpuFail` per GPU of
        the node, so cluster sorts planning a working set see the whole
        fault domain through this one query.
        """
        now = self.env.now
        failed = {event.gpu for event in self.plan.events
                  if isinstance(event, GpuFail) and event.at <= now}
        spec = self.machine.spec
        if isinstance(spec, ClusterSpec):
            for event in self.plan.events:
                if isinstance(event, NodeDown) and event.at <= now:
                    failed.update(spec.gpu_ids_of_node(event.node))
        return failed

    def failed_node_ids(self) -> Set[int]:
        """Cluster nodes lost at or before the current simulated time."""
        now = self.env.now
        return {event.node for event in self.plan.events
                if isinstance(event, NodeDown) and event.at <= now}

    def check_host(self, numa: int) -> None:
        """Raise :class:`~repro.errors.NodeFaultError` if the NUMA
        domain's node is dead.

        The host-side analogue of :meth:`check_device`: copies touching
        a lost node's host memory fail fast instead of parking on NIC
        links that will never come back.  A no-op on single machines.
        """
        if not self._dead_nodes:
            return
        spec = self.machine.spec
        if not isinstance(spec, ClusterSpec):
            return
        node = spec.node_of_numa(numa)
        if node in self._dead_nodes:
            raise NodeFaultError(
                f"node {node} of {spec.name} is down; host memory "
                f"mem{numa} is unreachable")

    def quarantined_ids(self) -> Set[int]:
        """``id(resource)`` of every link currently quarantined.

        Links whose health score fell below the policy's low watermark
        (flapping links, repeatedly-downed switches).  The resilient
        router treats these like down links *when a detour exists*;
        quarantine is advisory and never strands a copy's only route.
        """
        if not self.link_health:
            return set()
        now = self.env.now
        return {rid for rid, health in self.link_health.items()
                if health.is_quarantined(now)}

    def backoff_jitter_draw(self) -> float:
        """One uniform [0, 1) draw from the seeded backoff-jitter stream."""
        return float(self._jitter_rng.random())

    def is_failed(self, gpu: int) -> bool:
        """Whether ``gpu`` has hard-failed by now (runtime view)."""
        return gpu in self._failed

    def fail_event(self, gpu: int) -> Event:
        """Event fired the instant ``gpu`` hard-fails.

        Stays pending forever for GPUs that never fail; already-dead
        GPUs get an already-succeeded event.
        """
        event = self._fail_events.get(gpu)
        if event is None:
            event = self._fail_events[gpu] = self.env.event()
            if gpu in self._failed:
                event.succeed()
        return event

    def check_device(self, device) -> None:
        """Raise :class:`~repro.errors.DeviceFaultError` if dead.

        Called by the runtime before touching a device (new copies,
        allocations, kernel launches) so work issued *after* a GPU
        fails errors out instead of silently completing on a corpse.
        """
        if device.id in self._failed:
            raise DeviceFaultError(
                f"{device.name} has hard-failed; no new work can be "
                "issued to it")

    def run_on_device(self, device, duration):
        """Process: a kernel's timed section, racing the device's death.

        Replaces the plain ``timeout(duration)`` of kernel launches when
        a fault plan is installed: if the device hard-fails before the
        kernel retires, the launch fails with
        :class:`~repro.errors.DeviceFaultError` (its functional effect
        never applies — the data on the dead GPU is gone).
        """
        self.check_device(device)
        timeout = self.env.timeout(duration)
        died = self.fail_event(device.id)
        yield self.env.any_of([timeout, died])
        if device.id in self._failed and not timeout.triggered:
            raise DeviceFaultError(
                f"{device.name} failed {self.env.now:.6f}s into a "
                "running kernel")

    def straggler_factor(self, gpu: int) -> float:
        """Largest straggler slowdown active on ``gpu`` right now."""
        now = self.env.now
        factor = 1.0
        for event in self.plan.events:
            if (isinstance(event, StragglerGpu) and event.gpu == gpu
                    and event.at <= now < event.at + event.duration):
                factor = max(factor, event.slowdown)
        return factor

    def on_flow_started(self, flow: Flow) -> None:
        """Arm the per-flow transient-failure draw for a resilient copy.

        Called by ``copy_async`` for every flow it starts; one uniform
        draw decides failure, a second places the failure at a fraction
        of the flow's current expected lifetime.
        """
        probability = self.plan.transient_failure_prob
        if probability <= 0.0 or not flow.active:
            return
        if self._rng.random() >= probability:
            return
        fraction = float(self._rng.random())
        self.env.process(self._kill_flow_later(flow, fraction))

    def downtime_between(self, start: float, end: float) -> float:
        """Seconds in ``[start, end]`` with at least one fault window open.

        The union (not the sum) of all timeline windows clipped to the
        interval; still-open windows extend to ``end``.
        """
        intervals = []
        for record in self.timeline:
            hi = end if record.end is None else min(record.end, end)
            lo = max(record.start, start)
            if hi > lo:
                intervals.append((lo, hi))
        intervals.sort()
        total = 0.0
        cursor = start
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                total += hi - lo
                cursor = hi
        return total

    def timeline_keys(self) -> List[Tuple[str, str, float, Optional[float]]]:
        """The timeline as plain tuples (for determinism assertions)."""
        return [record.key() for record in self.timeline]

    # -- event drivers -----------------------------------------------------
    def _drive(self, event):
        delay = event.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if isinstance(event, LinkDegradation):
            yield from self._run_degradation(event)
        elif isinstance(event, LinkDown):
            yield from self._run_link_down(event)
        elif isinstance(event, LinkFlap):
            yield from self._run_link_flap(event)
        elif isinstance(event, SwitchDown):
            yield from self._run_switch_down(event)
        elif isinstance(event, CopyEngineStall):
            yield from self._run_engine_stall(event)
        elif isinstance(event, StragglerGpu):
            yield from self._run_straggler(event)
        elif isinstance(event, GpuFail):
            self._run_gpu_fail(event)
        elif isinstance(event, NodeDown):
            self._run_node_down(event)
        elif isinstance(event, TransientTransfer):
            self._run_transient(event)
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {event!r}")

    def _open(self, kind: str, target: str) -> FaultRecord:
        """Start a window record; traced when :meth:`_close` is called."""
        record = FaultRecord(kind=kind, target=target, start=self.env.now)
        self.timeline.append(record)
        if self.obs is not None:
            self.obs.fault_opened(kind, target, self.env.now)
        return record

    def _close(self, record: FaultRecord) -> None:
        record.end = self.env.now
        self.machine.trace.record(f"Fault:{record.kind}", record.target,
                                  record.start, end=record.end)
        if self.obs is not None:
            self.obs.fault_closed(record.kind, record.target, record.start,
                                  record.end)

    def _instant(self, kind: str, target: str) -> None:
        now = self.env.now
        self.timeline.append(FaultRecord(kind=kind, target=target,
                                         start=now, end=now))
        self.machine.trace.record(f"Fault:{kind}", target, now, end=now)
        if self.obs is not None:
            self.obs.fault_opened(kind, target, now, instant=True)

    def _apply_factor(self, resource: Resource, factor: float) -> None:
        stack = self._factors.setdefault(id(resource), [])
        stack.append(factor)
        self._refresh_factor(resource, stack)

    def _lift_factor(self, resource: Resource, factor: float) -> None:
        stack = self._factors[id(resource)]
        stack.remove(factor)
        self._refresh_factor(resource, stack)

    def _refresh_factor(self, resource: Resource,
                        stack: List[float]) -> None:
        if not stack:
            # Restore *exactly* 1.0 (no float drift from multiply/divide
            # round trips) so post-fault time stays bit-identical to a
            # never-faulted run.
            resource.set_fault_factor(1.0)
        else:
            product = 1.0
            for factor in stack:
                product *= factor
            resource.set_fault_factor(product)
        self.machine.net.requery_capacity()

    def _run_degradation(self, event: LinkDegradation):
        resource = self._resource(event.resource)
        record = self._open("degradation", resource.name)
        self._apply_factor(resource, event.factor)
        yield self.env.timeout(event.duration)
        self._lift_factor(resource, event.factor)
        self._close(record)

    def _mark_down(self, resource: Resource) -> bool:
        """Open one down window on ``resource`` (no cache flush here).

        Returns ``True`` on a genuine up-to-down transition (first open
        window), which is also the moment the link's health score takes
        its hit.  Callers decide how to batch the route-cache flush.
        """
        rid = id(resource)
        open_windows = self._down.get(rid, 0)
        self._down[rid] = open_windows + 1
        if open_windows:
            return False
        self._restored[rid] = self.env.event()
        health = self.link_health.get(rid)
        if health is None:
            health = self.link_health[rid] = LinkHealth(
                self.machine.resilience, now=self.env.now)
        health.record_down(self.env.now)
        return True

    def _mark_up(self, resource: Resource) -> bool:
        """Close one down window; ``True`` when fully restored."""
        rid = id(resource)
        open_windows = self._down[rid] - 1
        if open_windows:
            self._down[rid] = open_windows
            return False
        del self._down[rid]
        self._restored.pop(rid).succeed()
        self.link_health[rid].record_up(self.env.now)
        return True

    def _run_link_down(self, event: LinkDown):
        resource = self._resource(event.resource)
        record = self._open("link_down", resource.name)
        self._mark_down(resource)
        # Precomputed routes may cross the downed link; drop them so
        # the next lookup re-resolves against the live link state.
        self.machine.spec.topology.invalidate_routes()
        for flow in self.machine.net.flows_crossing(resource):
            self.machine.net.abort_flow(flow, TransientTransferError(
                f"link {resource.name} went down under flow "
                f"{flow.label!r}"))
        yield self.env.timeout(event.duration)
        if self._mark_up(resource):
            # The link is back: cached avoid-set detours are stale too.
            self.machine.spec.topology.invalidate_routes()
        self._close(record)

    def _run_link_flap(self, event: LinkFlap):
        resource = self._resource(event.resource)
        for cycle in range(event.cycles):
            record = self._open("link_flap", resource.name)
            self._mark_down(resource)
            self.machine.spec.topology.invalidate_routes()
            for flow in self.machine.net.flows_crossing(resource):
                self.machine.net.abort_flow(flow, TransientTransferError(
                    f"link {resource.name} flapped down under flow "
                    f"{flow.label!r}"))
            yield self.env.timeout(event.down_s)
            if self._mark_up(resource):
                self.machine.spec.topology.invalidate_routes()
            self._close(record)
            if cycle + 1 < event.cycles:
                yield self.env.timeout(event.up_s)

    def _run_switch_down(self, event: SwitchDown):
        name, resources = self._switch_target(event.switch)
        record = self._open("switch_down", name)
        flushed = False
        for resource in resources:
            if self._mark_down(resource):
                flushed = True
        if flushed:
            # One batched flush for the whole switch going dark, not
            # one flush per attached link.
            self.machine.spec.topology.invalidate_routes()
        for resource in resources:
            for flow in self.machine.net.flows_crossing(resource):
                self.machine.net.abort_flow(flow, TransientTransferError(
                    f"fabric switch {name} went down under flow "
                    f"{flow.label!r}"))
        yield self.env.timeout(event.duration)
        restored = False
        for resource in resources:
            if self._mark_up(resource):
                restored = True
        if restored:
            self.machine.spec.topology.invalidate_routes()
        self._close(record)

    def _run_node_down(self, event: NodeDown) -> None:
        spec = self.machine.spec  # a ClusterSpec (validated at install)
        node = event.node
        if node in self._dead_nodes:
            return
        self._dead_nodes.add(node)
        # Permanent: the timeline window stays open, the trace gets an
        # instantaneous marker at the moment of death.
        self._open("node_down", f"node{node}")
        self.machine.trace.record("Fault:node_down", f"node{node}",
                                  self.env.now, end=self.env.now)
        # Every GPU of the node hard-fails: kernels racing fail_event
        # die, check_device rejects new work, planners see the ids via
        # failed_gpu_ids().
        topology = spec.topology
        dead_resources: List[Resource] = []
        for gpu in spec.gpu_ids_of_node(node):
            self._failed.add(gpu)
            fail_event = self._fail_events.get(gpu)
            if fail_event is not None and not fail_event.triggered:
                fail_event.succeed()
            memory = topology.node(self.machine.device(gpu).name).memory
            if memory is not None:
                dead_resources.append(memory)
        # NIC uplinks go down permanently (their restored events never
        # fire; check_host keeps new copies from parking on them).
        flushed = False
        for link_name in spec.node_nic_links(node):
            resource = self._by_name[link_name]
            dead_resources.append(resource)
            if self._mark_down(resource):
                flushed = True
        if flushed:
            self.machine.spec.topology.invalidate_routes()
        for memory_name in spec.node_host_memories(node):
            dead_resources.append(self._by_name[memory_name])
        for resource in dead_resources:
            for flow in self.machine.net.flows_crossing(resource):
                self.machine.net.abort_flow(flow, NodeFaultError(
                    f"node {node} died under flow {flow.label!r}"))

    def _run_engine_stall(self, event: CopyEngineStall):
        if event.direction not in ("in", "out", "both"):
            raise ValueError(
                f"engine stall direction must be 'in', 'out' or 'both', "
                f"got {event.direction!r}")
        device = self.machine.device(event.gpu)
        engines = []
        if event.direction in ("in", "both"):
            engines.append(device.engine_in)
        if event.direction in ("out", "both"):
            engines.append(device.engine_out)
        for engine in engines:
            yield engine.acquire()
        record = self._open("engine_stall", device.name)
        yield self.env.timeout(event.duration)
        for engine in reversed(engines):
            engine.release()
        self._close(record)

    def _run_straggler(self, event: StragglerGpu):
        device = self.machine.device(event.gpu)
        memory = self.machine.spec.topology.node(device.name).memory
        record = self._open("straggler", device.name)
        device.compute_slowdown *= event.slowdown
        if memory is not None:
            self._apply_factor(memory, 1.0 / event.slowdown)
        yield self.env.timeout(event.duration)
        device.compute_slowdown /= event.slowdown
        if abs(device.compute_slowdown - 1.0) < 1e-12:
            device.compute_slowdown = 1.0
        if memory is not None:
            self._lift_factor(memory, 1.0 / event.slowdown)
        self._close(record)

    def _run_gpu_fail(self, event: GpuFail) -> None:
        device = self.machine.device(event.gpu)
        self._failed.add(event.gpu)
        fail_event = self._fail_events.get(event.gpu)
        if fail_event is not None and not fail_event.triggered:
            fail_event.succeed()
        # Permanent: the timeline window stays open, the trace gets an
        # instantaneous marker at the moment of death.
        self._open("gpu_fail", device.name)
        self.machine.trace.record("Fault:gpu_fail", device.name,
                                  self.env.now, end=self.env.now)
        memory = self.machine.spec.topology.node(device.name).memory
        if memory is not None:
            for flow in self.machine.net.flows_crossing(memory):
                self.machine.net.abort_flow(flow, DeviceFaultError(
                    f"{device.name} failed under flow {flow.label!r}"))

    def _run_transient(self, event: TransientTransfer) -> None:
        for flow in self.machine.net.active_flows:
            if flow.label.startswith(_RESILIENT_PREFIXES):
                self.machine.net.abort_flow(flow, TransientTransferError(
                    f"injected transient failure of flow {flow.label!r}"))
                self._instant("transient", flow.label)
                return
        # Nothing resilient in flight: the shot fizzles (recorded so
        # the timeline still reproduces).
        self._instant("transient", "<no-target>")

    def _kill_flow_later(self, flow: Flow, fraction: float):
        if flow.rate > 0:
            delay = fraction * (flow.remaining / flow.rate)
        else:
            delay = 0.0
        if delay > 0:
            yield self.env.timeout(delay)
        if flow.active:
            self.machine.net.abort_flow(flow, TransientTransferError(
                f"transient failure of flow {flow.label!r}"))
            self._instant("transient", flow.label)
