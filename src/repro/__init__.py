"""repro — reproduction of "Evaluating Multi-GPU Sorting with Modern
Interconnects" (Maltenberger, Ilic, Tolovski, Rabl; SIGMOD 2022).

The library couples a calibrated flow-level simulator of three
multi-GPU platforms (IBM AC922, DELTA D22x, NVIDIA DGX A100) with
fully functional implementations of the paper's algorithms: P2P sort,
HET sort, the single-GPU sorting primitives of Table 2, and the CPU
baselines (PARADIS, SIMD LSB radix sort, gnu_parallel-style multiway
merge).

Quickstart::

    import numpy as np
    from repro import Machine, dgx_a100, p2p_sort
    from repro.data import generate

    machine = Machine(dgx_a100(), scale=1000)   # 1 physical : 1000 logical
    keys = generate(1_000_000, "uniform", np.int32, seed=0)
    result = p2p_sort(machine, keys)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.data import generate
from repro.hw import (
    SystemBuilder,
    SystemSpec,
    delta_d22x,
    dgx_a100,
    ibm_ac922,
    system_by_name,
)
from repro.runtime import Machine
from repro.sort import (
    HetConfig,
    P2PConfig,
    SortResult,
    best_gpu_order_for_p2p,
    het_sort,
    p2p_sort,
    preferred_gpu_ids,
    select_pivot,
)

__version__ = "1.0.0"

__all__ = [
    "HetConfig",
    "Machine",
    "P2PConfig",
    "SortResult",
    "SystemBuilder",
    "SystemSpec",
    "best_gpu_order_for_p2p",
    "delta_d22x",
    "dgx_a100",
    "generate",
    "het_sort",
    "ibm_ac922",
    "p2p_sort",
    "preferred_gpu_ids",
    "select_pivot",
    "system_by_name",
]
