"""Merge Path: balanced parallel merging of two sorted arrays.

Green, McColl & Bader's *GPU Merge Path* (ICS '12) observes that the
merge of sorted ``A`` and ``B`` corresponds to a monotone path through
the ``|A| x |B|`` grid, and that the path's intersections with its
cross-diagonals split the merge into equally sized, independent
segments — one per GPU thread block.  :func:`merge_partitions` computes
these intersections by binary search on the diagonals;
:func:`merge_sorted` merges the segments (rank-based, vectorized).

This module provides the functional behaviour of both ``thrust::merge``
(used for the GPU-local merges of the P2P sort, Section 5.2) and MGPU's
merge sort (Table 2), which is :func:`merge_sort` — a bottom-up merge
sort built from merge-path merges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SortError
from repro.runtime.buffer import default_pool


def _diagonal_intersection(a: np.ndarray, b: np.ndarray, diag: int) -> int:
    """Number of elements taken from ``a`` on cross-diagonal ``diag``.

    Binary search along the diagonal for the point where the merge path
    crosses it: the largest ``i`` (elements of ``a`` consumed) such that
    ``a[:i]`` precedes ``b[diag - i:]`` in the merged order.
    """
    lo = max(0, diag - b.size)
    hi = min(diag, a.size)
    while lo < hi:
        mid = (lo + hi) // 2
        # Path goes below-right of (mid, diag-mid) iff a[mid] <= b[diag-mid-1].
        if a[mid] <= b[diag - mid - 1]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def merge_partitions(a: np.ndarray, b: np.ndarray,
                     segments: int) -> List[Tuple[int, int, int, int]]:
    """Split the merge of ``a`` and ``b`` into balanced segments.

    Returns ``segments`` tuples ``(a_lo, a_hi, b_lo, b_hi)`` whose
    merges concatenate to the full merge, each covering
    ``ceil((|a|+|b|)/segments)`` output elements (the last may be
    shorter).
    """
    if segments < 1:
        raise SortError(f"segments must be >= 1, got {segments}")
    total = a.size + b.size
    step = -(-total // segments) if total else 0
    bounds = [0]
    for seg in range(1, segments):
        bounds.append(min(seg * step, total))
    bounds.append(total)
    crossings = [_diagonal_intersection(a, b, diag) for diag in bounds]
    result = []
    for lo, hi, a_lo, a_hi in zip(bounds, bounds[1:], crossings,
                                  crossings[1:]):
        result.append((a_lo, a_hi, lo - a_lo, hi - a_hi))
    return result


def merge_positions(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray,
                                                           np.ndarray]:
    """Output positions of every ``a`` and ``b`` element in their merge.

    Element ``a[i]`` lands at ``i +`` (number of ``b`` elements strictly
    before it); ``b[j]`` at ``j +`` (number of ``a`` elements at or
    before it).  Ties resolve in favour of ``a`` — the usual stable
    merge convention.  The positions double as the payload permutation
    for key-value merging.
    """
    pos_a = np.arange(a.size) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(b.size) + np.searchsorted(a, b, side="right")
    return pos_a, pos_b


def _rank_merge_into(a: np.ndarray, b: np.ndarray,
                     out: np.ndarray) -> np.ndarray:
    """Vectorized stable merge by output-rank computation, into ``out``.

    ``out`` must not overlap either input — the scatter writes every
    output position before all input positions have been read.
    """
    pos_a, pos_b = merge_positions(a, b)
    out[pos_a] = a
    out[pos_b] = b
    return out


def _check_out(out: Optional[np.ndarray], size: int,
               *inputs: np.ndarray) -> None:
    if out is None:
        return
    if out.size != size:
        raise SortError(
            f"merge output needs {size} elements, got {out.size}")
    for source in inputs:
        if out is source:
            raise SortError("merge cannot write over an input run")


def merge_sorted_with_values(a: np.ndarray, b: np.ndarray,
                             va: np.ndarray, vb: np.ndarray, *,
                             out_keys: Optional[np.ndarray] = None,
                             out_values: Optional[np.ndarray] = None
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Key-value merge: payloads travel with their keys.

    ``out_keys`` / ``out_values`` are optional preallocated
    destinations (must not overlap the inputs).
    """
    if a.size != va.size or b.size != vb.size:
        raise SortError("keys and values must have equal lengths")
    _check_out(out_keys, a.size + b.size, a, b)
    _check_out(out_values, va.size + vb.size, va, vb)
    keys = (np.empty(a.size + b.size, dtype=a.dtype)
            if out_keys is None else out_keys)
    values = (np.empty(va.size + vb.size, dtype=va.dtype)
              if out_values is None else out_values)
    pos_a, pos_b = merge_positions(a, b)
    keys[pos_a] = a
    keys[pos_b] = b
    values[pos_a] = va
    values[pos_b] = vb
    return keys, values


def merge_sorted(a: np.ndarray, b: np.ndarray, segments: int = 8, *,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Merge two sorted arrays into one sorted array.

    The merge is partitioned with :func:`merge_partitions` and each
    segment is merged independently — the exact decomposition a GPU
    performs, so segment boundaries are covered by tests rather than
    hidden by a monolithic merge.  Pass ``out`` (not overlapping the
    inputs) to merge into a preallocated array; each segment then
    scatters straight into its output slice with no intermediate.
    """
    if a.dtype != b.dtype:
        raise SortError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
    _check_out(out, a.size + b.size, a, b)
    if a.size == 0 or b.size == 0:
        source = b if a.size == 0 else a
        if out is None:
            return source.copy()
        out[:] = source
        return out
    if out is None:
        out = np.empty(a.size + b.size, dtype=a.dtype)
    offset = 0
    for a_lo, a_hi, b_lo, b_hi in merge_partitions(a, b, segments):
        size = (a_hi - a_lo) + (b_hi - b_lo)
        _rank_merge_into(a[a_lo:a_hi], b[b_lo:b_hi],
                         out[offset:offset + size])
        offset += size
    return out


def merge_sort(values: np.ndarray, base: int = 32, *,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Bottom-up merge sort built from merge-path merges (MGPU model).

    Runs of ``base`` elements are sorted in place, then width-doubling
    merge levels ping-pong between the result array and one workspace
    borrowed from the pool — two fixed buffers, no per-level
    allocation.  Pass ``out`` to receive the sorted keys in a
    preallocated array (sorting into the input array itself is
    allowed).
    """
    if values.ndim != 1:
        raise SortError("merge sort expects a one-dimensional array")
    n = values.size
    if n <= 1:
        if out is None:
            return values.copy()
        out[:] = values
        return out
    result = np.empty(n, dtype=values.dtype) if out is None else out
    if result is not values:
        result[:] = values
    for i in range(0, n, base):
        result[i:i + base].sort(kind="stable")
    with default_pool.borrow(n, values.dtype) as aux:
        src, dst = result, aux
        width = base
        while width < n:
            for lo in range(0, n, 2 * width):
                mid = min(lo + width, n)
                hi = min(lo + 2 * width, n)
                if mid < hi:
                    merge_sorted(src[lo:mid], src[mid:hi],
                                 out=dst[lo:hi])
                else:
                    # Odd tail run: carry it into the level's buffer.
                    dst[lo:hi] = src[lo:hi]
            src, dst = dst, src
            width *= 2
        if src is not result:
            # Odd level count: land the result in the owned buffer so
            # the return value never aliases the pooled workspace.
            result[:] = src
    return result
