"""Shared machinery of the radix sorts: key transforms and scatter.

Radix sorts operate on unsigned bit patterns.  Signed integers and IEEE
floats are mapped to order-preserving unsigned keys first — the same
bit tricks CUB's ``Traits`` layer applies on the GPU:

* signed int: flip the sign bit,
* float: if negative, invert all bits; otherwise set the sign bit.

Both transforms are involutions up to their inverse and strictly
monotone, so sorting the transformed keys sorts the originals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SortError

#: Unsigned view type per itemsize.
_UINT_FOR_SIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def to_radix_keys(values: np.ndarray) -> Tuple[np.ndarray, np.dtype]:
    """Map values to order-preserving unsigned keys.

    Returns the transformed key array and the original dtype (needed by
    :func:`from_radix_keys`).
    """
    dtype = values.dtype
    if dtype.kind not in "iuf":
        raise SortError(f"radix sort supports numeric keys, not {dtype}")
    uint_type = _UINT_FOR_SIZE.get(dtype.itemsize)
    if uint_type is None:
        raise SortError(f"unsupported key width {dtype.itemsize}")
    bits = values.view(uint_type)
    if dtype.kind == "u":
        return bits.copy(), dtype
    sign_bit = uint_type(1) << uint_type(dtype.itemsize * 8 - 1)
    if dtype.kind == "i":
        return bits ^ sign_bit, dtype
    # IEEE float: total order compatible with < on non-NaN values.
    negative = (bits & sign_bit) != 0
    keys = np.where(negative, ~bits, bits | sign_bit)
    return keys, dtype


def from_radix_keys(keys: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`to_radix_keys`."""
    uint_type = keys.dtype.type
    if dtype.kind == "u":
        return keys.view(dtype)
    sign_bit = uint_type(uint_type(1) << (dtype.itemsize * 8 - 1))
    if dtype.kind == "i":
        return (keys ^ sign_bit).view(dtype)
    was_negative = (keys & sign_bit) == 0
    bits = np.where(was_negative, ~keys, keys & ~sign_bit)
    return bits.view(dtype)


def binary_insertion_sort(keys: np.ndarray) -> None:
    """Sort ``keys`` in place by binary insertion.

    The local sort both radix hybrids (Stehle's MSB sort and PARADIS)
    fall back to once buckets are small.
    """
    for i in range(1, keys.size):
        key = keys[i]
        lo = int(np.searchsorted(keys[:i], key, side="right"))
        if lo != i:
            keys[lo + 1:i + 1] = keys[lo:i]
            keys[lo] = key


def stable_counting_permutation(digits: np.ndarray, radix: int) -> np.ndarray:
    """Permutation that stably sorts ``digits`` (values in ``[0, radix)``).

    This is the scatter step of one counting-sort pass, computed the way
    a GPU would: a histogram, an exclusive prefix sum over it, and a
    per-bucket gather.  ``result[i]`` is the *source* index of the
    element that belongs at output position ``i``.
    """
    if digits.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(digits, minlength=radix)
    order = np.empty(digits.size, dtype=np.int64)
    offset = 0
    for value in range(radix):
        count = int(counts[value])
        if count == 0:
            continue
        order[offset:offset + count] = np.flatnonzero(digits == value)
        offset += count
    return order


def counting_sort_pass(keys: np.ndarray, shift: int, radix_bits: int,
                       payload: np.ndarray = None):
    """One stable counting-sort pass on the digit at ``shift``.

    Returns the reordered keys (and payload, when given).
    """
    radix = 1 << radix_bits
    digits = ((keys >> keys.dtype.type(shift))
              & keys.dtype.type(radix - 1)).astype(np.int64)
    order = stable_counting_permutation(digits, radix)
    if payload is None:
        return keys[order]
    return keys[order], payload[order]
