"""Shared machinery of the radix sorts: key transforms and scatter.

Radix sorts operate on unsigned bit patterns.  Signed integers and IEEE
floats are mapped to order-preserving unsigned keys first — the same
bit tricks CUB's ``Traits`` layer applies on the GPU:

* signed int: flip the sign bit,
* float: if negative, invert all bits; otherwise set the sign bit.

Both transforms are involutions up to their inverse and strictly
monotone, so sorting the transformed keys sorts the originals.

The scatter step comes in two flavours:

* :func:`stable_counting_permutation` — the production path: one
  vectorized stable scatter over the whole digit array (NumPy's stable
  integer argsort *is* the histogram / exclusive-prefix-sum /
  rank-scatter pass a GPU performs, executed in C), O(n) and
  memory-bandwidth-bound.
* :func:`stable_counting_permutation_reference` — the seed
  implementation: a per-bucket gather that rescans the digit array once
  per bucket (``radix`` × ``flatnonzero``).  Retained as the
  property-test oracle and as the "before" side of the ``kernels``
  benchmark; both flavours produce bit-identical permutations.

Likewise :func:`binary_insertion_sort` (the element-at-a-time local
sort of the MSB hybrids) stays as the oracle for :func:`small_sort`,
the vectorized small-bucket fallback used on the hot paths.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import SortError

#: Unsigned view type per itemsize.
_UINT_FOR_SIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

#: Buckets at or below this size are finished with the local sort (the
#: threshold both radix hybrids share; see Stehle & Jacobsen).
SMALL_SORT_THRESHOLD = 64


def to_radix_keys(values: np.ndarray) -> Tuple[np.ndarray, np.dtype]:
    """Map values to order-preserving unsigned keys.

    Returns the transformed key array and the original dtype (needed by
    :func:`from_radix_keys`).
    """
    dtype = values.dtype
    if dtype.kind not in "iuf":
        raise SortError(f"radix sort supports numeric keys, not {dtype}")
    uint_type = _UINT_FOR_SIZE.get(dtype.itemsize)
    if uint_type is None:
        raise SortError(f"unsupported key width {dtype.itemsize}")
    bits = values.view(uint_type)
    if dtype.kind == "u":
        return bits.copy(), dtype
    sign_bit = uint_type(1) << uint_type(dtype.itemsize * 8 - 1)
    if dtype.kind == "i":
        return bits ^ sign_bit, dtype
    # IEEE float: total order compatible with < on non-NaN values.
    negative = (bits & sign_bit) != 0
    keys = np.where(negative, ~bits, bits | sign_bit)
    return keys, dtype


def from_radix_keys(keys: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`to_radix_keys`."""
    uint_type = keys.dtype.type
    if dtype.kind == "u":
        return keys.view(dtype)
    sign_bit = uint_type(uint_type(1) << (dtype.itemsize * 8 - 1))
    if dtype.kind == "i":
        return (keys ^ sign_bit).view(dtype)
    was_negative = (keys & sign_bit) == 0
    bits = np.where(was_negative, ~keys, keys & ~sign_bit)
    return bits.view(dtype)


def binary_insertion_sort(keys: np.ndarray) -> None:
    """Sort ``keys`` in place by binary insertion.

    The element-at-a-time local sort of the original radix hybrids
    (Stehle's MSB sort and PARADIS).  Retained as the property-test
    oracle for :func:`small_sort`, which the hot paths use instead.
    """
    for i in range(1, keys.size):
        key = keys[i]
        lo = int(np.searchsorted(keys[:i], key, side="right"))
        if lo != i:
            keys[lo + 1:i + 1] = keys[lo:i]
            keys[lo] = key


def small_sort(keys: np.ndarray) -> None:
    """Vectorized in-place local sort for small buckets.

    Replaces :func:`binary_insertion_sort` behind the same
    :data:`SMALL_SORT_THRESHOLD`; on bare keys the two are
    element-identical (total order, no payloads to keep stable).
    """
    keys.sort()


def _digit_dtype(radix: int) -> np.dtype:
    """Narrowest unsigned dtype that holds digits in ``[0, radix)``."""
    return np.dtype(np.uint8 if radix <= 256 else np.uint16)


def _stable_digit_order(compact: np.ndarray) -> np.ndarray:
    """Stable ascending argsort of a compact (uint8/uint16) digit array.

    NumPy dispatches ``kind="stable"`` on narrow integers to its C
    radix sort — exactly the histogram + exclusive prefix sum +
    within-bucket-rank scatter of one GPU counting-sort pass.
    """
    return np.argsort(compact, kind="stable")


def _check_digit_range(digits: np.ndarray, radix: int) -> None:
    low = int(digits.min())
    high = int(digits.max())
    if low < 0 or high >= radix:
        raise SortError(
            f"digit values must lie in [0, {radix}), got range "
            f"[{low}, {high}]")


def stable_counting_permutation(digits: np.ndarray,
                                radix: int) -> np.ndarray:
    """Permutation that stably sorts ``digits`` (values in ``[0, radix)``).

    ``result[i]`` is the *source* index of the element that belongs at
    output position ``i``.  Computed as one vectorized stable scatter
    over the whole array (see the module docstring); digit values
    outside ``[0, radix)`` raise :class:`~repro.errors.SortError`
    instead of being silently folded into a grown histogram.
    """
    if digits.size == 0:
        return np.empty(0, dtype=np.int64)
    _check_digit_range(digits, radix)
    compact = digits.astype(_digit_dtype(radix), copy=False)
    return _stable_digit_order(compact).astype(np.int64, copy=False)


def stable_counting_permutation_reference(digits: np.ndarray,
                                          radix: int) -> np.ndarray:
    """The seed scatter: histogram + one gather pass per bucket.

    O(n * radix) — every bucket rescans the whole digit array.  Kept
    in-tree as the oracle the vectorized scatter is property-tested
    against, and as the benchmark's "before" path.
    """
    if digits.size == 0:
        return np.empty(0, dtype=np.int64)
    _check_digit_range(digits, radix)
    counts = np.bincount(digits, minlength=radix)
    order = np.empty(digits.size, dtype=np.int64)
    offset = 0
    for value in range(radix):
        count = int(counts[value])
        if count == 0:
            continue
        order[offset:offset + count] = np.flatnonzero(digits == value)
        offset += count
    return order


def counting_sort_pass(keys: np.ndarray, shift: int, radix_bits: int, *,
                       payload: Optional[np.ndarray] = None,
                       out: Optional[np.ndarray] = None,
                       payload_out: Optional[np.ndarray] = None
                       ) -> Union[np.ndarray,
                                  Tuple[np.ndarray, np.ndarray]]:
    """One stable counting-sort pass on the digit at ``shift``.

    ``out`` / ``payload_out`` are optional preallocated destinations —
    the second half of the LSB sort's double buffer — so a pass moves
    data between two fixed arrays instead of allocating fresh ones.
    Returns the reordered keys (and payload, when given).
    """
    if out is keys or (payload is not None and payload_out is payload):
        raise SortError("counting_sort_pass cannot scatter in place")
    radix = 1 << radix_bits
    key_type = keys.dtype.type
    # Digits are masked to [0, radix) by construction: no range check.
    digits = (keys >> key_type(shift)) & key_type(radix - 1)
    compact = digits.astype(_digit_dtype(radix), copy=False)
    order = _stable_digit_order(compact)
    if out is None:
        out = np.empty_like(keys)
    np.take(keys, order, out=out)
    if payload is None:
        return out
    if payload_out is None:
        payload_out = np.empty_like(payload)
    np.take(payload, order, out=payload_out)
    return out, payload_out
