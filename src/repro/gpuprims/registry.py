"""Registry mapping primitive names to functional sort implementations.

The names match the calibration keys of
:data:`repro.hw.calibration.A100_SORT_RATES` (Table 2): ``thrust``,
``cub``, ``stehle``, ``mgpu``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import SortError
from repro.gpuprims.merge_path import merge_sort
from repro.gpuprims.radix_lsb import radix_sort_lsb
from repro.gpuprims.radix_msb import radix_sort_msb

#: Registered sorts accept ``(values, *, out=None)`` and return the
#: sorted keys; with ``out`` they sort into a preallocated array
#: (``out`` may be ``values`` itself for an in-place sort).
SortFn = Callable[..., np.ndarray]

_REGISTRY: Dict[str, SortFn] = {
    "thrust": radix_sort_lsb,
    "cub": radix_sort_lsb,
    "stehle": radix_sort_msb,
    "mgpu": merge_sort,
}


def available_primitives() -> List[str]:
    """Names of the registered single-GPU sort primitives."""
    return sorted(_REGISTRY)


def functional_sort(primitive: str) -> SortFn:
    """The functional implementation behind a primitive name."""
    try:
        return _REGISTRY[primitive]
    except KeyError:
        known = ", ".join(available_primitives())
        raise SortError(
            f"unknown sort primitive {primitive!r} (known: {known})"
        ) from None
