"""LSB (least-significant-bit first) radix sort.

This is the algorithm behind ``thrust::sort`` since release 1.11 and
CUB's ``DeviceRadixSort`` (Section 5.1: the paper finds both identical
because they share one underlying LSB radix sort).  The sort makes
``ceil(key_bits / radix_bits)`` stable counting-sort passes from the
least to the most significant digit; stability of each pass makes the
composition correct.

The implementation double-buffers between the transformed key array and
*one* auxiliary array borrowed from the workspace pool, mirroring
Thrust's ``O(n)`` temporary-memory requirement the paper discusses (the
multi-GPU sorts pre-allocate and reuse exactly this auxiliary buffer
for the P2P swaps, Section 5.2).  Each pass scatters between the two
fixed buffers — no per-pass allocation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import (
    counting_sort_pass,
    from_radix_keys,
    to_radix_keys,
)
from repro.runtime.buffer import default_pool


def _validate(values: np.ndarray, radix_bits: int) -> None:
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")


def radix_sort_lsb(values: np.ndarray, radix_bits: int = 8, *,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Return ``values`` sorted ascending with an LSB radix sort.

    ``radix_bits`` is the digit width per pass (CUB uses 4-8 bits
    depending on architecture; more bits mean fewer passes but a larger
    histogram).  Works for any numeric dtype via the order-preserving
    key transforms in :mod:`repro.gpuprims.common`.  Pass ``out`` (same
    length and dtype as ``values``) to receive the sorted keys in a
    preallocated array; sorting into the input array itself is allowed.
    """
    _validate(values, radix_bits)
    if values.size <= 1:
        if out is None:
            return values.copy()
        out[:] = values
        return out
    keys, dtype = to_radix_keys(values)
    key_bits = dtype.itemsize * 8
    with default_pool.borrow(keys.size, keys.dtype) as aux:
        current, alternate = keys, aux
        for shift in range(0, key_bits, radix_bits):
            counting_sort_pass(current, shift,
                               min(radix_bits, key_bits - shift),
                               out=alternate)
            current, alternate = alternate, current
        if current is not keys:
            # Odd pass count: land the result in the owned buffer so
            # nothing returned below aliases the pooled workspace.
            keys[:] = current
    result = from_radix_keys(keys, dtype)
    if out is None:
        return result
    out[:] = result
    return out


def argsort_radix_lsb(values: np.ndarray,
                      radix_bits: int = 8) -> np.ndarray:
    """Stable ascending argsort using the same LSB radix machinery."""
    _validate(values, radix_bits)
    keys, _ = to_radix_keys(values)
    key_bits = values.dtype.itemsize * 8
    indices = np.arange(values.size, dtype=np.int64)
    if values.size <= 1:
        return indices
    with default_pool.borrow(keys.size, keys.dtype) as key_aux, \
            default_pool.borrow(keys.size, np.int64) as index_aux:
        current, alternate = keys, key_aux
        current_idx, alternate_idx = indices, index_aux
        for shift in range(0, key_bits, radix_bits):
            counting_sort_pass(current, shift,
                               min(radix_bits, key_bits - shift),
                               payload=current_idx, out=alternate,
                               payload_out=alternate_idx)
            current, alternate = alternate, current
            current_idx, alternate_idx = alternate_idx, current_idx
        if current_idx is not indices:
            indices[:] = current_idx
    return indices
