"""LSB (least-significant-bit first) radix sort.

This is the algorithm behind ``thrust::sort`` since release 1.11 and
CUB's ``DeviceRadixSort`` (Section 5.1: the paper finds both identical
because they share one underlying LSB radix sort).  The sort makes
``ceil(key_bits / radix_bits)`` stable counting-sort passes from the
least to the most significant digit; stability of each pass makes the
composition correct.

The implementation double-buffers between the input and an auxiliary
array, mirroring Thrust's ``O(n)`` temporary-memory requirement the
paper discusses (the multi-GPU sorts pre-allocate and reuse exactly
this auxiliary buffer for the P2P swaps, Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import counting_sort_pass, from_radix_keys, to_radix_keys


def radix_sort_lsb(values: np.ndarray, radix_bits: int = 8) -> np.ndarray:
    """Return ``values`` sorted ascending with an LSB radix sort.

    ``radix_bits`` is the digit width per pass (CUB uses 4-8 bits
    depending on architecture; more bits mean fewer passes but a larger
    histogram).  Works for any numeric dtype via the order-preserving
    key transforms in :mod:`repro.gpuprims.common`.
    """
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if values.size <= 1:
        return values.copy()
    keys, dtype = to_radix_keys(values)
    key_bits = dtype.itemsize * 8
    for shift in range(0, key_bits, radix_bits):
        keys = counting_sort_pass(keys, shift, min(radix_bits,
                                                   key_bits - shift))
    return from_radix_keys(keys, dtype)


def argsort_radix_lsb(values: np.ndarray, radix_bits: int = 8) -> np.ndarray:
    """Stable ascending argsort using the same LSB radix machinery."""
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    keys, _ = to_radix_keys(values)
    key_bits = values.dtype.itemsize * 8
    indices = np.arange(values.size, dtype=np.int64)
    for shift in range(0, key_bits, radix_bits):
        keys, indices = counting_sort_pass(
            keys, shift, min(radix_bits, key_bits - shift), payload=indices)
    return indices
