"""Functional single-GPU sorting and merging primitives.

These are real, from-scratch NumPy implementations of the algorithms
whose GPU incarnations the paper evaluates in Table 2:

* :func:`repro.gpuprims.radix_lsb.radix_sort_lsb` — the LSB radix sort
  underlying Thrust 1.11 / CUB,
* :func:`repro.gpuprims.radix_msb.radix_sort_msb` — Stehle &
  Jacobsen's MSB hybrid radix sort,
* :func:`repro.gpuprims.merge_path.merge_sorted` /
  :func:`repro.gpuprims.merge_path.merge_sort` — Merge Path based
  merging (Green et al.) and the MGPU-style merge sort built on it.

The virtual runtime invokes them through :mod:`repro.gpuprims.registry`
so the timing model (calibrated rates) stays separate from the
functional algorithms.
"""

from repro.gpuprims.merge_path import (
    merge_partitions,
    merge_positions,
    merge_sort,
    merge_sorted,
    merge_sorted_with_values,
)
from repro.gpuprims.radix_lsb import radix_sort_lsb
from repro.gpuprims.radix_msb import radix_sort_msb
from repro.gpuprims.registry import available_primitives, functional_sort

__all__ = [
    "available_primitives",
    "functional_sort",
    "merge_partitions",
    "merge_positions",
    "merge_sorted_with_values",
    "merge_sort",
    "merge_sorted",
    "radix_sort_lsb",
    "radix_sort_msb",
]
