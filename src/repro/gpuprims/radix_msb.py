"""MSB (most-significant-bit first) hybrid radix sort.

Models the sort of Stehle & Jacobsen (SIGMOD 2017): partition on the
most significant digit first, then recurse into each bucket
independently — an MSB pass need not preserve the order established by
previous passes, which lets the algorithm consider more bits per pass
(Section 5.1).  Small buckets fall back to a binary insertion sort,
matching the original's local-sort stage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import (
    binary_insertion_sort,
    from_radix_keys,
    to_radix_keys,
)

#: Buckets at or below this size are finished with the local sort.
_LOCAL_SORT_THRESHOLD = 64


def _msb_partition(keys: np.ndarray, high_bit: int, radix_bits: int) -> None:
    """Recursively partition ``keys`` in place on the digit below ``high_bit``."""
    if keys.size <= _LOCAL_SORT_THRESHOLD or high_bit <= 0:
        binary_insertion_sort(keys)
        return
    bits = min(radix_bits, high_bit)
    shift = high_bit - bits
    radix = 1 << bits
    digits = ((keys >> keys.dtype.type(shift))
              & keys.dtype.type(radix - 1)).astype(np.int64)
    counts = np.bincount(digits, minlength=radix)
    # Out-of-place bucket gather per level (the original uses in-place
    # block permutations; the bucket structure and recursion are the
    # algorithmically relevant parts).
    gathered = np.empty_like(keys)
    boundaries = np.zeros(radix + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    for value in range(radix):
        lo, hi = boundaries[value], boundaries[value + 1]
        if lo != hi:
            gathered[lo:hi] = keys[digits == value]
    keys[:] = gathered
    for value in range(radix):
        lo, hi = int(boundaries[value]), int(boundaries[value + 1])
        if hi - lo > 1:
            _msb_partition(keys[lo:hi], shift, radix_bits)


def radix_sort_msb(values: np.ndarray, radix_bits: int = 8) -> np.ndarray:
    """Return ``values`` sorted ascending with an MSB hybrid radix sort."""
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if values.size <= 1:
        return values.copy()
    keys, dtype = to_radix_keys(values)
    _msb_partition(keys, dtype.itemsize * 8, radix_bits)
    return from_radix_keys(keys, dtype)
