"""MSB (most-significant-bit first) hybrid radix sort.

Models the sort of Stehle & Jacobsen (SIGMOD 2017): partition on the
most significant digit first, then recurse into each bucket
independently — an MSB pass need not preserve the order established by
previous passes, which lets the algorithm consider more bits per pass
(Section 5.1).  Small buckets fall back to the vectorized local sort,
matching the original's local-sort stage.

Each level is one vectorized counting scatter into a shared scratch
buffer (borrowed once per sort from the workspace pool) followed by a
copy back — the out-of-place stand-in for the original's in-place block
permutations; the bucket structure and recursion are the
algorithmically relevant parts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import (
    SMALL_SORT_THRESHOLD,
    _digit_dtype,
    _stable_digit_order,
    from_radix_keys,
    small_sort,
    to_radix_keys,
)
from repro.runtime.buffer import default_pool

#: Buckets at or below this size are finished with the local sort.
_LOCAL_SORT_THRESHOLD = SMALL_SORT_THRESHOLD


def _msb_partition(keys: np.ndarray, scratch: np.ndarray, high_bit: int,
                   radix_bits: int) -> None:
    """Recursively partition ``keys`` on the digit below ``high_bit``.

    ``scratch`` is the level's gather target — the same element range of
    the sort-wide workspace, so recursion reuses one buffer throughout.
    """
    if keys.size <= _LOCAL_SORT_THRESHOLD or high_bit <= 0:
        small_sort(keys)
        return
    bits = min(radix_bits, high_bit)
    shift = high_bit - bits
    radix = 1 << bits
    key_type = keys.dtype.type
    compact = ((keys >> key_type(shift))
               & key_type(radix - 1)).astype(_digit_dtype(radix),
                                             copy=False)
    counts = np.bincount(compact, minlength=radix)
    order = _stable_digit_order(compact)
    np.take(keys, order, out=scratch)
    keys[:] = scratch
    boundaries = np.zeros(radix + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    for value in range(radix):
        lo, hi = int(boundaries[value]), int(boundaries[value + 1])
        if hi - lo > 1:
            _msb_partition(keys[lo:hi], scratch[lo:hi], shift, radix_bits)


def radix_sort_msb(values: np.ndarray, radix_bits: int = 8, *,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Return ``values`` sorted ascending with an MSB hybrid radix sort.

    Pass ``out`` to receive the sorted keys in a preallocated array
    (sorting into the input array itself is allowed).
    """
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if values.size <= 1:
        if out is None:
            return values.copy()
        out[:] = values
        return out
    keys, dtype = to_radix_keys(values)
    with default_pool.borrow(keys.size, keys.dtype) as scratch:
        _msb_partition(keys, scratch, dtype.itemsize * 8, radix_bits)
    result = from_radix_keys(keys, dtype)
    if out is None:
        return result
    out[:] = result
    return out
