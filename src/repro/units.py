"""Unit helpers.

Throughout the library, bandwidth is expressed in bytes per second and
data sizes in bytes.  The paper reports decimal gigabytes (1 GB/s =
1e9 B/s); these helpers keep call sites readable and conversion-free.
"""

from __future__ import annotations

#: One decimal kilobyte/megabyte/gigabyte in bytes.
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0

#: Binary units, for device memory capacities quoted in GiB.
KiB = 1024.0
MiB = 1024.0 ** 2
GiB = 1024.0 ** 3

#: Time units in seconds.
US = 1e-6
MS = 1e-3


def gb(x: float) -> float:
    """``x`` decimal gigabytes in bytes (or GB/s in B/s)."""
    return x * GB


def gib(x: float) -> float:
    """``x`` binary gibibytes in bytes."""
    return x * GiB


def to_gb(nbytes: float) -> float:
    """Bytes to decimal gigabytes."""
    return nbytes / GB


def keys(n_billion: float) -> int:
    """``n_billion`` billion keys as an integer count."""
    return int(round(n_billion * 1e9))
