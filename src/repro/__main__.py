"""Top-level command line: simulate a multi-GPU sort from the shell.

Examples::

    python -m repro sort --system dgx-a100 --keys 2e9 --algorithm p2p
    python -m repro sort --system ibm-ac922 --gpus 0,1 --algorithm het \\
        --distribution reverse-sorted --trace /tmp/run.json
    python -m repro systems
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import breakdown_of, verify_sort, write_chrome_trace
from repro.data import DISTRIBUTIONS, generate, key_dtype
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort, rp_sort

#: Physical keys simulated per run; --keys scales them logically.
PHYSICAL_KEYS = 500_000

_ALGORITHMS = {"p2p": p2p_sort, "het": het_sort, "rp": rp_sort}

_SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")


def _parse_gpu_ids(text: str):
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"GPU ids must be comma-separated integers, got {text!r}")


def cmd_sort(args) -> int:
    spec = system_by_name(args.system)
    logical_keys = float(args.keys)
    physical = min(PHYSICAL_KEYS, int(logical_keys))
    scale = max(1.0, logical_keys / physical)
    machine = Machine(spec, scale=scale, fast_functional=True)
    dtype = key_dtype(args.dtype)
    keys = generate(physical, args.distribution, dtype, seed=args.seed)

    sorter = _ALGORITHMS[args.algorithm]
    gpu_ids = args.gpus
    if gpu_ids is None and args.algorithm == "p2p":
        count = 1
        while count * 2 <= spec.num_gpus:
            count *= 2
        gpu_ids = spec.preferred_gpu_set(count)

    result = sorter(machine, keys, gpu_ids=gpu_ids)
    verify_sort(keys, result.output)

    print(f"{result.algorithm} sort on {spec.display_name}, "
          f"GPUs {result.gpu_ids}")
    print(f"  {result.logical_keys / 1e9:.2f}B {args.dtype} keys "
          f"({args.distribution}) in {result.duration:.3f} s "
          f"({result.keys_per_second / 1e9:.2f}B keys/s)")
    for phase, seconds, fraction in breakdown_of(result).rows():
        print(f"  {phase:12s} {seconds:8.3f} s  ({fraction:5.1%})")
    if result.p2p_bytes:
        print(f"  P2P volume   {result.p2p_bytes / 1e9:8.1f} GB")
    if args.trace:
        path = write_chrome_trace(machine.trace, args.trace)
        print(f"  timeline written to {path} (open in chrome://tracing)")
    return 0


def cmd_recommend(args) -> int:
    from repro.sort import recommend

    spec = system_by_name(args.system)
    recommendation = recommend(spec, float(args.keys),
                               numa_local_input=args.numa_local_input)
    print(f"best plan for {float(args.keys) / 1e9:.2f}B keys on "
          f"{spec.display_name}:")
    print(f"  {recommendation.best.describe()}")
    print("all candidates:")
    for line in recommendation.table().splitlines():
        print(f"  {line}")
    return 0


def cmd_systems(_args) -> int:
    for name in _SYSTEMS:
        spec = system_by_name(name)
        gpus = spec.gpu_specs[spec.gpu_names[0]].model
        print(f"{name:12s} {spec.display_name}: {spec.num_gpus}x {gpus}, "
              f"{spec.cpu.model}")
    return 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulated multi-GPU sorting on the paper's platforms.")
    commands = parser.add_subparsers(dest="command", required=True)

    sort_parser = commands.add_parser(
        "sort", help="run one simulated sort and print its breakdown")
    sort_parser.add_argument("--system", choices=_SYSTEMS,
                             default="dgx-a100")
    sort_parser.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                             default="p2p")
    sort_parser.add_argument("--keys", default="2e9",
                             help="logical key count (default 2e9)")
    sort_parser.add_argument("--dtype", default="int",
                             help="int, float, long, double or a numpy "
                                  "dtype name")
    sort_parser.add_argument("--distribution",
                             choices=sorted(DISTRIBUTIONS),
                             default="uniform")
    sort_parser.add_argument("--gpus", type=_parse_gpu_ids, default=None,
                             help="comma-separated GPU ids, e.g. 0,2,4,6")
    sort_parser.add_argument("--seed", type=int, default=42)
    sort_parser.add_argument("--trace", default=None,
                             help="write a Chrome trace JSON here")
    sort_parser.set_defaults(handler=cmd_sort)

    systems_parser = commands.add_parser(
        "systems", help="list the simulated platforms")
    systems_parser.set_defaults(handler=cmd_systems)

    rec_parser = commands.add_parser(
        "recommend", help="pick the best algorithm for a workload")
    rec_parser.add_argument("--system", choices=_SYSTEMS,
                            default="dgx-a100")
    rec_parser.add_argument("--keys", default="2e9")
    rec_parser.add_argument("--numa-local-input", action="store_true",
                            help="input is already partitioned across "
                                 "NUMA nodes")
    rec_parser.set_defaults(handler=cmd_recommend)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
