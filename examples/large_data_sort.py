#!/usr/bin/env python
"""Out-of-core sorting: 60B keys (240 GB) through 8 GPUs.

Reproduces the Figure 15 scenario interactively: the data exceeds the
combined GPU memory, so HET sort streams chunk groups through the
devices and merges on the CPU.  Compares the 2n and 3n pipelining
approaches, eager merging, and the CPU-only PARADIS baseline.
"""

import numpy as np

from repro import HetConfig, Machine, dgx_a100, het_sort
from repro.bench.report import Table
from repro.data import generate
from repro.runtime.cpu_ops import cpu_sort

PHYSICAL_KEYS = 500_000
BILLIONS = 60.0
SCALE = BILLIONS * 1e9 / PHYSICAL_KEYS


def run_variant(keys, config=None):
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    return het_sort(machine, keys, config=config)


def run_paradis(keys):
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    buffer = machine.host_buffer(keys.copy())
    start = machine.now
    machine.run(cpu_sort(machine, buffer, primitive="paradis"))
    return machine.now - start


def main() -> None:
    keys = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=1)
    expected = np.sort(keys)

    print(f"Sorting {BILLIONS:.0f}B int32 keys "
          f"({BILLIONS * 4:.0f} GB, out-of-core) on a DGX A100\n")

    table = Table(["configuration", "chunk groups", "duration [s]",
                   "vs best"])
    results = {}
    for label, config in [
        ("HET 2n", HetConfig(approach="2n")),
        ("HET 3n", HetConfig(approach="3n")),
        ("HET 2n + eager merging", HetConfig(approach="2n",
                                             eager_merge=True)),
        ("HET 3n + eager merging", HetConfig(approach="3n",
                                             eager_merge=True)),
    ]:
        result = run_variant(keys, config)
        assert np.array_equal(result.output, expected)
        results[label] = (result.chunk_groups, result.duration)

    paradis = run_paradis(keys)
    best = min(duration for _, duration in results.values())
    for label, (groups, duration) in results.items():
        table.add_row(label, groups, f"{duration:.2f}",
                      f"{duration / best:.2f}x")
    table.add_row("PARADIS (CPU only)", "-", f"{paradis:.2f}",
                  f"{paradis / best:.2f}x")
    table.print()

    print("Takeaways (Section 6.2): 2n and 3n tie - overlapping copy "
          "and compute no longer pays; eager merging actively hurts; "
          "the GPUs still beat the CPU by "
          f"{paradis / best:.1f}x on out-of-core data.")


if __name__ == "__main__":
    main()
