#!/usr/bin/env python
"""Beyond the paper: every Section 7 proposal, measured side by side.

The paper closes with a list of directions — multi-hop P2P routing, a
partition-based sort for NVSwitch systems, a P2P GPU merge for large
data, and better CPU-GPU data placement.  This library implements all
of them; this example runs each head-to-head against the paper's
baseline configuration.
"""

import numpy as np

from repro import Machine, HetConfig, P2PConfig, system_by_name
from repro.bench.report import Table
from repro.data import generate
from repro.sort import het_sort, p2p_sort, rp_sort

PHYSICAL = 200_000


def machine(system: str, billions: float) -> Machine:
    return Machine(system_by_name(system), scale=billions * 1e9 / PHYSICAL,
                   fast_functional=True)


def main() -> None:
    keys = generate(PHYSICAL, "uniform", np.int32, seed=0)
    table = Table(["idea (paper Section 7)", "baseline [s]",
                   "extension [s]", "gain"])

    # 1. Multi-hop P2P routing on the DELTA D22x.
    base = p2p_sort(machine("delta-d22x", 2), keys,
                    gpu_ids=(0, 1, 2, 3)).duration
    relayed = p2p_sort(machine("delta-d22x", 2), keys,
                       gpu_ids=(0, 1, 2, 3),
                       config=P2PConfig(multihop=True)).duration
    table.add_row("multi-hop P2P routing (DELTA, 4 GPUs)",
                  f"{base:.3f}", f"{relayed:.3f}",
                  f"{base / relayed:.2f}x")

    # 2. The single-exchange RP sort on the DGX A100.
    base = p2p_sort(machine("dgx-a100", 2), keys).duration
    partitioned = rp_sort(machine("dgx-a100", 2), keys).duration
    table.add_row("single-exchange RP sort (DGX, 8 GPUs)",
                  f"{base:.3f}", f"{partitioned:.3f}",
                  f"{base / partitioned:.2f}x")

    # 3. P2P GPU merge for large (out-of-core) data on the AC922.
    base = het_sort(machine("ibm-ac922", 32), keys,
                    gpu_ids=(0, 1)).duration
    merged = het_sort(machine("ibm-ac922", 32), keys, gpu_ids=(0, 1),
                      config=HetConfig(gpu_merge_groups=True)).duration
    table.add_row("GPU-merged chunk groups (AC922, 32B keys)",
                  f"{base:.2f}", f"{merged:.2f}",
                  f"{base / merged:.2f}x")

    # 4. NUMA-aware input placement on the AC922.
    base = p2p_sort(machine("ibm-ac922", 2), keys,
                    gpu_ids=(0, 1, 2, 3)).duration
    placed = p2p_sort(machine("ibm-ac922", 2), keys, gpu_ids=(0, 1, 2, 3),
                      config=P2PConfig(input_placement="numa-local",
                                       charge_redistribution=False)
                      ).duration
    table.add_row("NUMA-local input placement (AC922, 4 GPUs)",
                  f"{base:.3f}", f"{placed:.3f}",
                  f"{base / placed:.2f}x")

    table.print()
    print("Each extension attacks the bottleneck the paper diagnosed: "
          "host-staged P2P hops, repeated merge-stage traffic, the "
          "k-way CPU merge, and single-node data placement.")


if __name__ == "__main__":
    main()
