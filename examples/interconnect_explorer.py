#!/usr/bin/env python
"""Interconnect explorer: measure any transfer pattern on any platform.

Reproduces the Section 4 methodology interactively: build transfer
scenarios (serial/parallel, uni-/bidirectional, CPU-GPU or P2P) and see
where the topology throttles them.  Prints a full P2P throughput matrix
plus the scaling behaviour of parallel CPU-GPU copies for each catalog
system.

Usage::

    python examples/interconnect_explorer.py [system]

with ``system`` one of ``ibm-ac922``, ``delta-d22x``, ``dgx-a100``
(default: all three).
"""

import sys

from repro import system_by_name
from repro.bench.report import Table
from repro.bench.transfers import (
    bidir,
    htod,
    measure_throughput,
    p2p,
)

SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")


def p2p_matrix(system: str) -> None:
    spec = system_by_name(system)
    n = spec.num_gpus
    table = Table(["from\\to", *[f"gpu{j}" for j in range(n)]],
                  title=f"{spec.display_name}: serial P2P throughput "
                        "[GB/s] (* = host-staged)")
    for i in range(n):
        row = [f"gpu{i}"]
        for j in range(n):
            if i == j:
                row.append("-")
                continue
            rate = measure_throughput(spec, [p2p(i, j)])
            staged = spec.topology.route(
                spec.gpu_name(i), spec.gpu_name(j)).host_traversing
            row.append(f"{rate:.0f}{'*' if staged else ''}")
        table.add_row(*row)
    table.print()


def cpu_gpu_scaling(system: str) -> None:
    spec = system_by_name(system)
    table = Table(["GPUs", "HtoD [GB/s]", "bidir [GB/s]",
                   "HtoD scaling"],
                  title=f"{spec.display_name}: parallel CPU-GPU copies")
    serial = measure_throughput(spec, [htod(0)])
    count = 1
    while count <= spec.num_gpus:
        gpus = spec.preferred_gpu_set(count)
        unidir = measure_throughput(spec, [htod(i) for i in gpus])
        both = measure_throughput(spec,
                                  [t for i in gpus for t in bidir(i)])
        table.add_row(count, f"{unidir:.1f}", f"{both:.1f}",
                      f"{unidir / serial:.2f}x")
        count *= 2
    table.print()


def main() -> None:
    chosen = sys.argv[1:] or SYSTEMS
    for system in chosen:
        p2p_matrix(system)
        cpu_gpu_scaling(system)


if __name__ == "__main__":
    main()
