#!/usr/bin/env python
"""Model a hypothetical next-generation platform and pick an algorithm.

The paper's discussion (Section 7) argues hardware needs faster
CPU-GPU transfers for multi-GPU sorting to scale.  This example builds
two fictional machines with the :class:`~repro.hw.SystemBuilder` —
one "budget" box with PCIe 3.0 everywhere, and one "dream" box pairing
NVSwitch-class P2P with NVLink-class host links — then predicts each
algorithm's performance on both, before any hardware exists.
"""

import numpy as np

from repro import HetConfig, Machine, SystemBuilder, het_sort, p2p_sort
from repro.bench.report import Table
from repro.data import generate
from repro.hw import LinkKind
from repro.units import gb, gib

PHYSICAL_KEYS = 500_000
SCALE = 8e9 / PHYSICAL_KEYS     # 8B keys = 32 GB


def budget_box():
    """Four V100s behind PCIe 3.0, no P2P links at all."""
    b = SystemBuilder("budget-box", "Budget box (PCIe 3.0 only)")
    b.add_numa_node(read_bw=gb(100), write_bw=gb(100), capacity=gib(384))
    for _ in range(4):
        b.add_gpu(numa=0, spec=SystemBuilder.v100_spec(),
                  link=LinkKind.PCIE3, bandwidth=gb(12.5),
                  duplex_factor=0.8)
    return b.build(cpu=SystemBuilder.generic_cpu(sort_rate=gb(2.0),
                                                 merge_rate=gb(45.0)))


def dream_box():
    """Four A100s: NVSwitch P2P plus NVLink-class CPU links."""
    b = SystemBuilder("dream-box", "Dream box (NVLink host + NVSwitch)")
    b.add_numa_node(read_bw=gb(300), write_bw=gb(250), capacity=gib(768),
                    duplex_factor=0.8)
    for _ in range(4):
        b.add_gpu(numa=0, spec=SystemBuilder.a100_spec(),
                  link=LinkKind.NVLINK3, bandwidth=gb(110),
                  duplex_factor=0.9, hbm_bw=gb(1240))
    b.add_nvswitch(gb(279.0), range(4))
    return b.build(cpu=SystemBuilder.generic_cpu(sort_rate=gb(7.0),
                                                 merge_rate=gb(50.0)))


def main() -> None:
    keys = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=2)
    expected = np.sort(keys)
    table = Table(["platform", "P2P sort [s]", "HET sort [s]", "winner"])

    for build in (budget_box, dream_box):
        durations = {}
        for label, algorithm in (("p2p", p2p_sort), ("het", het_sort)):
            machine = Machine(build(), scale=SCALE, fast_functional=True)
            config = HetConfig() if label == "het" else None
            result = algorithm(machine, keys, gpu_ids=(0, 1, 2, 3),
                               config=config)
            assert np.array_equal(result.output, expected)
            durations[label] = result.duration
        winner = "P2P sort" if durations["p2p"] < durations["het"] \
            else "HET sort"
        table.add_row(build().display_name, f"{durations['p2p']:.2f}",
                      f"{durations['het']:.2f}", winner)

    table.print()
    print("Without P2P interconnects the GPU merge routes through the "
          "host and the CPU merge keeps up; with NVSwitch-class links "
          "the P2P merge pulls ahead - the Section 7 conclusion, "
          "predicted for hardware that does not exist.")


if __name__ == "__main__":
    main()
