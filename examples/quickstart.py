#!/usr/bin/env python
"""Quickstart: sort 2B keys on a simulated DGX A100.

Demonstrates the core API: pick a platform from the catalog, wrap it in
a :class:`~repro.runtime.Machine`, generate a workload, and run both
multi-GPU sorting algorithms.  With ``scale=2000`` the one million
physical keys represent two billion logical keys — the size of the
paper's Figure 14 breakdown — while still really sorting data.
"""

import numpy as np

from repro import Machine, dgx_a100, het_sort, p2p_sort
from repro.analysis import breakdown_of
from repro.data import generate

PHYSICAL_KEYS = 1_000_000
SCALE = 2_000          # -> 2B logical keys (8 GB of int32)


def main() -> None:
    keys = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=0)

    print(f"Sorting {PHYSICAL_KEYS * SCALE / 1e9:.0f}B int32 keys "
          f"on a simulated NVIDIA DGX A100\n")

    for name, algorithm, gpu_ids in [
        ("P2P sort", p2p_sort, (0, 1, 2, 3, 4, 5, 6, 7)),
        ("HET sort", het_sort, (0, 1, 2, 3, 4, 5, 6, 7)),
    ]:
        machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
        result = algorithm(machine, keys, gpu_ids=gpu_ids)
        assert np.array_equal(result.output, np.sort(keys)), "sort is wrong!"

        print(f"{name} on {len(gpu_ids)} GPUs: {result.duration:.3f} s "
              f"({result.keys_per_second / 1e9:.1f}B keys/s)")
        for phase, seconds, fraction in breakdown_of(result).rows():
            print(f"    {phase:6s} {seconds:7.3f} s  ({fraction:5.1%})")
        print()

    print("Both outputs verified against numpy.sort.")


if __name__ == "__main__":
    main()
