#!/usr/bin/env python
"""Database scenario: GPU-accelerated key-value sort powering a join.

The paper motivates sorting with its database applications — index
creation, duplicate detection and merge joins (Section 1).  This
example runs one end to end with *records*, not bare keys: each
relation's join key is sorted together with its row id (the library's
key-value mode), the sorted runs feed a merge join and duplicate
detection, and the sorted key column doubles as a range index.
"""

import numpy as np

from repro import Machine, dgx_a100, p2p_sort
from repro.bench.report import Table
from repro.data import generate

ROWS_R = 800_000
ROWS_S = 600_000
SCALE = 5_000            # each physical row stands in for 5000


def gpu_sorted_with_rowids(keys):
    """Sort (key, row id) records on 8 simulated GPUs."""
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    row_ids = np.arange(len(keys), dtype=np.int64)
    result = p2p_sort(machine, keys, values=row_ids)
    # Every payload still sits beside its own key.
    assert np.array_equal(keys[result.output_values], result.output)
    return result


def merge_join_count(r_keys, s_keys) -> int:
    """Join cardinality of R |><| S over sorted key columns."""
    left = np.searchsorted(s_keys, r_keys, side="left")
    right = np.searchsorted(s_keys, r_keys, side="right")
    return int((right - left).sum())


def main() -> None:
    # Skewed key domains so the relations overlap only partially.
    r = generate(ROWS_R, "uniform", np.int32, seed=10) % 1_000_000
    s = generate(ROWS_S, "normal", np.int32, seed=11) % 1_000_000

    r_result = gpu_sorted_with_rowids(r)
    s_result = gpu_sorted_with_rowids(s)

    r_sorted, s_sorted = r_result.output, s_result.output
    matches = merge_join_count(r_sorted, s_sorted)
    distinct_r = int(np.count_nonzero(np.diff(r_sorted)) + 1)

    table = Table(["step", "result"])
    table.add_row("sort R (key + row id) on 8 GPUs",
                  f"{r_result.logical_keys / 1e9:.1f}B rows in "
                  f"{r_result.duration:.3f} s")
    table.add_row("sort S (key + row id) on 8 GPUs",
                  f"{s_result.logical_keys / 1e9:.1f}B rows in "
                  f"{s_result.duration:.3f} s")
    table.add_row("merge join |R join S|", f"{matches:,} matches")
    table.add_row("duplicate detection on R",
                  f"{ROWS_R - distinct_r:,} duplicate keys")
    lo, hi = 250_000, 260_000
    span = np.searchsorted(r_sorted, [lo, hi])
    count = int(span[1] - span[0])
    sample_rows = r_result.output_values[span[0]:span[0] + 3]
    table.add_row(f"index range scan [{lo}, {hi})",
                  f"{count:,} rows; first row ids "
                  f"{list(map(int, sample_rows))}")
    table.print()

    print("Sorting is the expensive primitive; everything downstream "
          "is a linear scan over the sorted runs, and the row-id "
          "payloads point straight back into the base table.")


if __name__ == "__main__":
    main()
