"""Tests of the top-level ``python -m repro`` command line."""

import json

import pytest

from repro.__main__ import main


class TestSortCommand:
    def test_default_run(self, capsys):
        assert main(["sort", "--keys", "1e8"]) == 0
        out = capsys.readouterr().out
        assert "p2p sort on NVIDIA DGX A100" in out
        assert "HtoD" in out and "DtoH" in out

    def test_system_and_gpus(self, capsys):
        assert main(["sort", "--system", "ibm-ac922", "--gpus", "0,1",
                     "--keys", "1e8"]) == 0
        out = capsys.readouterr().out
        assert "GPUs (0, 1)" in out

    @pytest.mark.parametrize("algorithm", ["p2p", "het", "rp"])
    def test_all_algorithms(self, capsys, algorithm):
        assert main(["sort", "--algorithm", algorithm,
                     "--keys", "1e8"]) == 0
        assert f"{algorithm} sort" in capsys.readouterr().out

    def test_distribution_and_dtype(self, capsys):
        assert main(["sort", "--distribution", "reverse-sorted",
                     "--dtype", "double", "--keys", "1e8"]) == 0
        out = capsys.readouterr().out
        assert "double keys (reverse-sorted)" in out

    def test_trace_export(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["sort", "--keys", "1e8", "--trace", str(path)]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]

    def test_small_key_count_runs_functionally(self, capsys):
        # Fewer logical keys than the physical default: scale clamps
        # to 1 and the run is fully functional.
        assert main(["sort", "--keys", "1000"]) == 0
        assert "B int keys" in capsys.readouterr().out

    def test_bad_gpu_list_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sort", "--gpus", "zero,one"])


class TestSystemsCommand:
    def test_lists_all_three(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("ibm-ac922", "delta-d22x", "dgx-a100"):
            assert name in out


class TestRecommendCommand:
    def test_recommend_prints_plan(self, capsys):
        assert main(["recommend", "--system", "ibm-ac922",
                     "--keys", "2e9"]) == 0
        out = capsys.readouterr().out
        assert "best plan" in out
        assert "p2p" in out

    def test_recommend_with_numa_local(self, capsys):
        assert main(["recommend", "--system", "ibm-ac922",
                     "--keys", "2e9", "--numa-local-input"]) == 0
        assert "numa-local" in capsys.readouterr().out
