"""Unit tests of the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DISTRIBUTIONS,
    KEY_TYPES,
    generate,
    key_dtype,
    nearly_sorted,
    reverse_sorted,
    sorted_keys,
)
from repro.errors import SortError


class TestDistributions:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_deterministic_under_seed(self, name):
        a = generate(1000, name, np.int32, seed=7)
        b = generate(1000, name, np.int32, seed=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32,
                                       np.float64])
    def test_dtype_and_size(self, name, dtype):
        values = generate(500, name, dtype, seed=1)
        assert values.dtype == np.dtype(dtype)
        assert values.size == 500

    def test_sorted_is_sorted(self):
        values = sorted_keys(2000, np.int32, seed=5)
        assert np.all(np.diff(values.astype(np.int64)) >= 0)

    def test_reverse_sorted_is_descending(self):
        values = reverse_sorted(2000, np.int32, seed=5)
        assert np.all(np.diff(values.astype(np.int64)) <= 0)

    def test_nearly_sorted_is_mostly_ordered(self):
        values = nearly_sorted(10_000, np.int32, seed=5, disorder=0.01)
        inversions = np.count_nonzero(np.diff(values.astype(np.int64)) < 0)
        assert 0 < inversions < 400

    def test_nearly_sorted_zero_disorder(self):
        values = nearly_sorted(1000, np.int32, seed=5, disorder=0.0)
        assert np.all(np.diff(values.astype(np.int64)) >= 0)

    def test_nearly_sorted_disorder_bounds(self):
        with pytest.raises(SortError):
            nearly_sorted(100, disorder=1.5)

    def test_uniform_spans_range(self):
        values = generate(50_000, "uniform", np.int32, seed=2)
        span = float(values.max()) - float(values.min())
        full = float(np.iinfo(np.int32).max) - float(np.iinfo(np.int32).min)
        assert span > 0.9 * full

    def test_normal_concentrates(self):
        values = generate(50_000, "normal", np.int32, seed=2)
        info = np.iinfo(np.int32)
        middle = np.abs(values.astype(np.float64)) < 0.5 * info.max
        assert np.count_nonzero(middle) / values.size > 0.9

    def test_unknown_distribution(self):
        with pytest.raises(SortError, match="unknown distribution"):
            generate(10, "pareto")

    def test_zipf_is_heavily_skewed(self):
        values = generate(50_000, "zipf", np.int32, seed=3)
        top, counts = np.unique(values, return_counts=True)
        # The most frequent key covers a large share of the data.
        assert counts.max() / values.size > 0.2
        assert top.size > 10  # but there is a tail

    def test_zipf_alpha_validation(self):
        from repro.data import zipf
        with pytest.raises(SortError):
            zipf(10, alpha=1.0)

    @given(st.sampled_from(sorted(DISTRIBUTIONS)), st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_property_any_size(self, name, n):
        assert generate(n, name, np.int32, seed=0).size == n


class TestKeyTypes:
    def test_paper_names(self):
        assert key_dtype("int") == np.int32
        assert key_dtype("float") == np.float32
        assert key_dtype("long") == np.int64
        assert key_dtype("double") == np.float64

    def test_numpy_names_accepted(self):
        assert key_dtype("uint32") == np.uint32

    def test_non_numeric_rejected(self):
        with pytest.raises(SortError):
            key_dtype("str")

    def test_catalog_complete(self):
        assert set(KEY_TYPES) == {"int", "float", "long", "double"}
