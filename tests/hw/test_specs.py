"""Unit tests of GPU/CPU spec validation and rate lookups."""

import pytest

from repro.errors import CalibrationError
from repro.hw.gpu import GpuSpec
from repro.hw.host import CpuSpec, NumaNodeSpec
from repro.hw.links import LinkKind
from repro.units import gb, gib


def make_gpu(**overrides) -> GpuSpec:
    defaults = dict(
        model="Test GPU", memory_bytes=gib(32),
        sort_rates={"thrust": gb(58.0)}, merge_rate=gb(200.0),
        local_copy_rate=gb(360.0))
    defaults.update(overrides)
    return GpuSpec(**defaults)


class TestGpuSpec:
    def test_sort_seconds(self):
        spec = make_gpu()
        assert spec.sort_seconds("thrust", gb(5.8), 4) == pytest.approx(
            0.1, rel=1e-3)

    def test_width64_factor_slows_wide_keys(self):
        spec = make_gpu(width64_sort_factor=0.5)
        assert spec.sort_rate("thrust", 8) == pytest.approx(gb(29.0))
        assert spec.sort_rate("thrust", 4) == pytest.approx(gb(58.0))

    def test_unknown_primitive(self):
        with pytest.raises(CalibrationError, match="unknown sort primitive"):
            make_gpu().sort_rate("bogosort", 4)

    def test_merge_and_copy_seconds(self):
        spec = make_gpu()
        assert spec.merge_seconds(gb(2.0)) == pytest.approx(0.01, rel=1e-2)
        assert spec.local_copy_seconds(gb(3.6)) == pytest.approx(
            0.01, rel=1e-2)

    def test_alloc_seconds_matches_paper(self):
        # Section 5.1: 8 GB allocation takes 150 ms.
        spec = make_gpu()
        assert spec.alloc_seconds(gb(8.0)) == pytest.approx(0.15, rel=1e-2)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            make_gpu(memory_bytes=0)
        with pytest.raises(CalibrationError):
            make_gpu(sort_rates={"thrust": -1.0})
        with pytest.raises(CalibrationError):
            make_gpu(merge_rate=0.0)
        with pytest.raises(CalibrationError):
            make_gpu(local_copy_rate=0.0)


def make_cpu(**overrides) -> CpuSpec:
    defaults = dict(
        model="Test CPU", sockets=2, cores_per_socket=16,
        sort_rates={"paradis": gb(2.0), "gnu_parallel": gb(1.5)},
        multiway_merge_rate=gb(50.0), stream_bw=gb(130.0))
    defaults.update(overrides)
    return CpuSpec(**defaults)


class TestCpuSpec:
    def test_total_cores(self):
        assert make_cpu().total_cores == 32

    def test_best_primitive_prefers_fastest(self):
        cpu = make_cpu(sort_rates={"paradis": gb(2.0), "simd_lsb": gb(3.0)})
        assert cpu.best_sort_primitive() == "simd_lsb"

    def test_best_primitive_skips_simd_without_x86(self):
        cpu = make_cpu(sort_rates={"paradis": gb(2.0), "simd_lsb": gb(3.0)},
                       has_x86_simd=False)
        assert cpu.best_sort_primitive() == "paradis"

    def test_merge_k_factors_interpolate(self):
        cpu = make_cpu(merge_k_factors={4: 0.5, 8: 0.25})
        # Flat at the base rate up to the paper's 2-run calibration.
        assert cpu.multiway_merge_rate_for(1) == pytest.approx(gb(50.0))
        assert cpu.multiway_merge_rate_for(2) == pytest.approx(gb(50.0))
        # Anchor values hit exactly; between anchors linear in k.
        assert cpu.multiway_merge_rate_for(4) == pytest.approx(gb(25.0))
        assert cpu.multiway_merge_rate_for(3) == pytest.approx(gb(37.5))
        assert cpu.multiway_merge_rate_for(6) == pytest.approx(gb(18.75))
        assert cpu.multiway_merge_rate_for(8) == pytest.approx(gb(12.5))
        # Held beyond the last anchor.
        assert cpu.multiway_merge_rate_for(20) == pytest.approx(gb(12.5))

    def test_merge_k_factors_empty_is_flat(self):
        cpu = make_cpu()
        assert cpu.multiway_merge_rate_for(16) == cpu.multiway_merge_rate

    def test_unknown_primitive(self):
        with pytest.raises(CalibrationError):
            make_cpu().sort_rate("introsort")

    def test_validation(self):
        with pytest.raises(CalibrationError):
            make_cpu(sockets=0)
        with pytest.raises(CalibrationError):
            make_cpu(multiway_merge_rate=0.0)
        with pytest.raises(CalibrationError):
            make_cpu(sort_rates={"paradis": 0.0})


class TestNumaNodeSpec:
    def test_validation(self):
        with pytest.raises(CalibrationError):
            NumaNodeSpec(index=0, capacity_bytes=0, read_bw=1, write_bw=1)
        with pytest.raises(CalibrationError):
            NumaNodeSpec(index=0, capacity_bytes=1, read_bw=0, write_bw=1)
        with pytest.raises(CalibrationError):
            NumaNodeSpec(index=0, capacity_bytes=1, read_bw=1, write_bw=1,
                         duplex_factor=2.0)


class TestLinkKind:
    def test_peak_bandwidths_from_paper(self):
        assert LinkKind.PCIE3.peak_bandwidth == gb(16.0)
        assert LinkKind.PCIE4.peak_bandwidth == gb(32.0)
        assert LinkKind.NVLINK2.peak_bandwidth == gb(25.0)
        assert LinkKind.NVSWITCH.peak_bandwidth == gb(300.0)
        assert LinkKind.XBUS.peak_bandwidth == gb(64.0)

    def test_p2p_capability(self):
        assert LinkKind.NVLINK2.is_p2p_capable
        assert LinkKind.NVSWITCH.is_p2p_capable
        assert not LinkKind.PCIE3.is_p2p_capable
        assert not LinkKind.UPI.is_p2p_capable

    def test_str(self):
        assert str(LinkKind.NVLINK3) == "nvlink3"
