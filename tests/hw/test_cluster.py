"""Tests of cluster construction, scoped routing and the route cache."""

import pytest

from repro.errors import TopologyError
from repro.hw import (
    FABRICS,
    LinkKind,
    TIER_INTER,
    TIER_INTRA,
    dgx_a100,
    make_cluster,
    system_by_name,
)


class TestConstruction:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_four_node_dgx_builds(self, fabric):
        spec = make_cluster("dgx-a100", 4, fabric=fabric)
        assert spec.num_nodes == 4
        assert spec.num_gpus == 32
        assert spec.gpus_per_node == 8
        assert spec.fabric == fabric
        counts = spec.counts()
        assert counts["cluster_nodes"] == 4
        assert counts["gpus"] == 32
        assert counts["links"] > 4 * len(dgx_a100().topology.edges)

    def test_sixty_four_node_cluster_builds(self):
        spec = make_cluster("ibm-ac922", 64, fabric="fat-tree")
        assert spec.num_gpus == 256
        assert len(spec.numa) == 128
        # Node 63's hardware is present under global names.
        spec.topology.node("gpu255")
        spec.topology.node("cpu127")

    def test_unknown_fabric_rejected(self):
        with pytest.raises(TopologyError, match="dragonfly"):
            make_cluster("dgx-a100", 4, fabric="torus")

    @pytest.mark.parametrize("nodes", [0, 65])
    def test_node_count_bounds(self, nodes):
        with pytest.raises(TopologyError, match=r"\[1, 64\]"):
            make_cluster("dgx-a100", nodes)

    def test_single_node_cluster_has_no_fabric(self):
        spec = make_cluster("dgx-a100", 1)
        assert spec.fabric == "none"
        base = dgx_a100()
        assert len(spec.topology.nodes) == len(base.topology.nodes)
        assert len(spec.topology.edges) == len(base.topology.edges)


class TestSpecHelpers:
    def test_gpu_and_numa_indexing(self):
        spec = make_cluster("dgx-a100", 4)
        assert spec.node_of_gpu(0) == 0
        assert spec.node_of_gpu(31) == 3
        assert spec.gpu_ids_of_node(2) == tuple(range(16, 24))
        assert spec.node_numa(3) == 3 * spec.numa_per_node
        assert spec.node_cpu_name(0) == "cpu0"
        with pytest.raises(TopologyError):
            spec.node_of_gpu(32)
        with pytest.raises(TopologyError):
            spec.gpu_ids_of_node(4)

    def test_node_gpu_order_mirrors_base_preference(self):
        base = dgx_a100()
        spec = make_cluster("dgx-a100", 2)
        for count in (2, 4, 8):
            local = base.preferred_gpu_set(count)
            assert spec.node_gpu_order(0, count) == local
            assert spec.node_gpu_order(1, count) == tuple(
                8 + i for i in local)

    def test_gpu_numa_follows_the_node(self):
        spec = make_cluster("ibm-ac922", 2)
        base = system_by_name("ibm-ac922")
        for name, numa in base.gpu_numa.items():
            gid = int(name[3:])
            assert spec.gpu_numa[f"gpu{gid + 4}"] == numa + 2


class TestScopedRouting:
    @pytest.mark.parametrize("base", ["dgx-a100", "ibm-ac922"])
    def test_single_node_routes_bit_identical_to_standalone(self, base):
        standalone = system_by_name(base)
        cluster = make_cluster(base, 1)
        pairs = [("cpu0", "gpu0"), ("gpu0", "gpu1"),
                 ("gpu0", f"gpu{standalone.num_gpus - 1}"),
                 ("cpu0", f"gpu{standalone.num_gpus - 1}")]
        for src, dst in pairs:
            a = standalone.topology.route(src, dst)
            b = cluster.topology.route(src, dst)
            assert [k for _, k in _edge_kinds(standalone, a)] == \
                [k for _, k in _edge_kinds(cluster, b)]
            assert a.bottleneck == b.bottleneck
            assert a.latency_s == b.latency_s
            assert len(a.hops) == len(b.hops)

    def test_intra_node_route_identical_on_every_node(self):
        spec = make_cluster("dgx-a100", 4, fabric="fat-tree")
        base = dgx_a100()
        reference = base.topology.route("cpu0", "gpu3")
        for k in range(4):
            route = spec.topology.route(spec.node_cpu_name(k),
                                        f"gpu{8 * k + 3}")
            assert route.bottleneck == reference.bottleneck
            assert route.latency_s == reference.latency_s

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_cross_node_route_crosses_the_fabric(self, fabric):
        spec = make_cluster("dgx-a100", 4, fabric=fabric)
        route = spec.topology.route("cpu0", spec.node_cpu_name(2))
        names = [resource.name for resource, _ in route.hops]
        tiers = {spec.topology.tier_of(name) for name in names}
        assert TIER_INTER in tiers
        assert any("nic" in name for name in names)
        # The fabric caps cross-node bandwidth at the IB cable rate.
        assert route.bottleneck <= 23.0e9

    def test_machine_partition_bookkeeping(self):
        spec = make_cluster("dgx-a100", 2)
        topo = spec.topology
        assert topo.machine_of("gpu0") == 0
        assert topo.machine_of("gpu8") == 1
        assert topo.machine_of("n0_nic0") is None

    def test_tier_tagging(self):
        spec = make_cluster("dgx-a100", 4, fabric="rail")
        topo = spec.topology
        assert topo.tier_of("n0_nic0_link") == TIER_INTER
        assert topo.tier_of("n0_nvswitch_port_gpu0") == TIER_INTRA
        inter = [name for name, tier in topo.tiers.items()
                 if tier == TIER_INTER]
        assert len(inter) > 4


class TestRouteTable:
    def test_lookup_hits_after_first_miss(self):
        spec = make_cluster("dgx-a100", 2)
        table = spec.topology.routes
        first = spec.topology.route("cpu0", "gpu9")
        assert table.misses >= 1
        hits = table.hits
        second = spec.topology.route("cpu0", "gpu9")
        assert second is first
        assert table.hits == hits + 1

    def test_invalidation_clears_and_counts(self):
        spec = make_cluster("dgx-a100", 2)
        topo = spec.topology
        topo.route("cpu0", "gpu0")
        assert len(topo.routes) >= 1
        topo.invalidate_routes()
        assert len(topo.routes) == 0
        assert topo.routes.invalidations >= 1

    def test_stats_shape(self):
        spec = make_cluster("dgx-a100", 2)
        spec.topology.route("cpu0", "gpu1")
        stats = spec.topology.routes.stats()
        for key in ("routes_cached", "hits", "misses", "hit_rate",
                    "invalidations", "miss_wall_s"):
            assert key in stats


def _edge_kinds(spec, route):
    """(resource name, LinkKind) per hop, resolved via the edge list."""
    by_resource = {}
    for edge in spec.topology.edges:
        by_resource[edge.resource.name] = edge.kind
    out = []
    for resource, _direction in route.hops:
        kind = by_resource.get(resource.name)
        if isinstance(kind, LinkKind):
            out.append((resource.name, kind))
    return out
