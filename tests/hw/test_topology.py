"""Unit tests of the topology graph and routing."""

import pytest

from repro.errors import TopologyError
from repro.hw.links import LinkKind
from repro.hw.topology import NodeKind, Topology
from repro.sim.resources import Direction, Resource


@pytest.fixture
def simple():
    """cpu0 - gpu0, cpu0 - cpu1 - gpu1, direct gpu0 - gpu1 link."""
    topo = Topology("test")
    topo.add_node("cpu0", NodeKind.CPU, memory=Resource("mem0", 100.0))
    topo.add_node("cpu1", NodeKind.CPU, memory=Resource("mem1", 100.0))
    topo.add_node("gpu0", NodeKind.GPU, memory=Resource("gmem0", 500.0))
    topo.add_node("gpu1", NodeKind.GPU, memory=Resource("gmem1", 500.0))
    topo.add_edge("cpu0", "cpu1", Resource("xbus", 40.0), LinkKind.XBUS)
    topo.add_edge("cpu0", "gpu0", Resource("link0", 70.0), LinkKind.NVLINK2)
    topo.add_edge("cpu1", "gpu1", Resource("link1", 70.0), LinkKind.NVLINK2)
    topo.add_edge("gpu0", "gpu1", Resource("p2p", 70.0), LinkKind.NVLINK2)
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self, simple):
        with pytest.raises(TopologyError):
            simple.add_node("cpu0", NodeKind.CPU)

    def test_edge_requires_known_nodes(self, simple):
        with pytest.raises(TopologyError):
            simple.add_edge("cpu0", "nope", Resource("x", 1.0),
                            LinkKind.PCIE3)

    def test_self_loop_rejected(self, simple):
        with pytest.raises(TopologyError):
            simple.add_edge("cpu0", "cpu0", Resource("x", 1.0),
                            LinkKind.PCIE3)

    def test_unknown_node_lookup(self, simple):
        with pytest.raises(TopologyError):
            simple.node("ghost")

    def test_nodes_of_kind(self, simple):
        assert [n.name for n in simple.nodes_of_kind(NodeKind.GPU)] == \
            ["gpu0", "gpu1"]


class TestRouting:
    def test_host_to_local_gpu(self, simple):
        route = simple.route("cpu0", "gpu0")
        names = [r.name for r, _ in route.hops]
        assert names == ["mem0", "link0", "gmem0"]
        directions = [d for _, d in route.hops]
        assert directions == [Direction.FWD, Direction.FWD, Direction.REV]

    def test_host_to_remote_gpu_crosses_interconnect(self, simple):
        route = simple.route("cpu0", "gpu1")
        names = [r.name for r, _ in route.hops]
        assert names == ["mem0", "xbus", "link1", "gmem1"]
        assert route.bottleneck == 40.0

    def test_direct_p2p_preferred_over_host(self, simple):
        route = simple.route("gpu0", "gpu1")
        names = [r.name for r, _ in route.hops]
        assert names == ["gmem0", "p2p", "gmem1"]
        assert not route.host_traversing

    def test_gpu_cannot_transit(self):
        topo = Topology()
        topo.add_node("gpu0", NodeKind.GPU)
        topo.add_node("gpu1", NodeKind.GPU)
        topo.add_node("gpu2", NodeKind.GPU)
        topo.add_edge("gpu0", "gpu1", Resource("a", 1.0), LinkKind.NVLINK2)
        topo.add_edge("gpu1", "gpu2", Resource("b", 1.0), LinkKind.NVLINK2)
        with pytest.raises(TopologyError, match="no path"):
            topo.route("gpu0", "gpu2")

    def test_host_traversing_flag(self):
        topo = Topology()
        topo.add_node("cpu0", NodeKind.CPU, memory=Resource("mem", 100.0))
        topo.add_node("gpu0", NodeKind.GPU)
        topo.add_node("gpu1", NodeKind.GPU)
        topo.add_edge("cpu0", "gpu0", Resource("a", 10.0), LinkKind.PCIE3)
        topo.add_edge("cpu0", "gpu1", Resource("b", 10.0), LinkKind.PCIE3)
        route = topo.route("gpu0", "gpu1")
        assert route.host_traversing

    def test_same_endpoint_rejected(self, simple):
        with pytest.raises(TopologyError):
            simple.route("gpu0", "gpu0")

    def test_widest_path_tie_break(self):
        topo = Topology()
        topo.add_node("a", NodeKind.CPU)
        topo.add_node("b", NodeKind.CPU)
        topo.add_node("mid1", NodeKind.SWITCH)
        topo.add_node("mid2", NodeKind.SWITCH)
        topo.add_edge("a", "mid1", Resource("narrow1", 5.0), LinkKind.PCIE3)
        topo.add_edge("mid1", "b", Resource("narrow2", 5.0), LinkKind.PCIE3)
        topo.add_edge("a", "mid2", Resource("wide1", 50.0), LinkKind.PCIE4)
        topo.add_edge("mid2", "b", Resource("wide2", 50.0), LinkKind.PCIE4)
        route = topo.route("a", "b")
        assert route.bottleneck == 50.0

    def test_route_is_cached(self, simple):
        assert simple.route("cpu0", "gpu0") is simple.route("cpu0", "gpu0")

    def test_adding_edge_invalidates_cache(self, simple):
        first = simple.route("cpu0", "gpu1")
        simple.add_edge("cpu0", "gpu1", Resource("short", 99.0),
                        LinkKind.NVLINK2)
        second = simple.route("cpu0", "gpu1")
        assert second is not first
        assert [r.name for r, _ in second.hops] == ["mem0", "short", "gmem1"]


class TestDirectP2P:
    def test_direct_edge_counts(self, simple):
        assert simple.has_direct_p2p("gpu0", "gpu1")

    def test_shared_p2p_switch_counts(self):
        topo = Topology()
        topo.add_node("gpu0", NodeKind.GPU)
        topo.add_node("gpu1", NodeKind.GPU)
        topo.add_node("nvswitch", NodeKind.SWITCH)
        topo.add_edge("gpu0", "nvswitch", Resource("p0", 279.0),
                      LinkKind.NVSWITCH)
        topo.add_edge("gpu1", "nvswitch", Resource("p1", 279.0),
                      LinkKind.NVSWITCH)
        assert topo.has_direct_p2p("gpu0", "gpu1")

    def test_pcie_edge_is_not_p2p_capable(self):
        topo = Topology()
        topo.add_node("gpu0", NodeKind.GPU)
        topo.add_node("gpu1", NodeKind.GPU)
        topo.add_edge("gpu0", "gpu1", Resource("x", 16.0), LinkKind.PCIE3)
        assert not topo.has_direct_p2p("gpu0", "gpu1")


class TestEdge:
    def test_direction_from_endpoints(self, simple):
        edge = simple.edges_between("cpu0", "gpu0")[0]
        assert edge.direction_from("cpu0") is Direction.FWD
        assert edge.direction_from("gpu0") is Direction.REV
        with pytest.raises(TopologyError):
            edge.direction_from("cpu1")

    def test_other(self, simple):
        edge = simple.edges_between("cpu0", "gpu0")[0]
        assert edge.other("cpu0") == "gpu0"
        assert edge.other("gpu0") == "cpu0"
        with pytest.raises(TopologyError):
            edge.other("gpu1")
