"""Unit tests of the platform catalog and the custom system builder."""

import pytest

from repro.errors import TopologyError
from repro.hw import (
    LinkKind,
    SystemBuilder,
    delta_d22x,
    dgx_a100,
    ibm_ac922,
    system_by_name,
)
from repro.units import gb, gib


class TestCatalog:
    def test_lookup_by_name(self):
        assert system_by_name("ibm-ac922").num_gpus == 4
        assert system_by_name("delta-d22x").num_gpus == 4
        assert system_by_name("dgx-a100").num_gpus == 8

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown system"):
            system_by_name("dgx-h100")

    def test_builders_return_fresh_specs(self):
        assert ibm_ac922() is not ibm_ac922()

    def test_table1_cpu_models(self):
        assert "POWER9" in ibm_ac922().cpu.model
        assert "Xeon" in delta_d22x().cpu.model
        assert "EPYC" in dgx_a100().cpu.model

    def test_table1_gpu_models(self):
        assert all("V100" in spec.model
                   for spec in ibm_ac922().gpu_specs.values())
        assert all("A100" in spec.model
                   for spec in dgx_a100().gpu_specs.values())

    def test_two_numa_nodes_everywhere(self):
        for builder in (ibm_ac922, delta_d22x, dgx_a100):
            assert len(builder().numa) == 2

    def test_gpu_numa_assignment(self):
        spec = dgx_a100()
        assert [spec.gpu_numa[f"gpu{i}"] for i in range(8)] == \
            [0, 0, 0, 0, 1, 1, 1, 1]

    def test_preferred_gpu_sets(self):
        assert ibm_ac922().preferred_gpu_set(2) == (0, 1)
        assert dgx_a100().preferred_gpu_set(2) == (0, 2)
        assert dgx_a100().preferred_gpu_set(4) == (0, 2, 4, 6)

    def test_preferred_set_default_and_overflow(self):
        spec = ibm_ac922()
        assert spec.preferred_gpu_set(3) == (0, 1, 2)
        with pytest.raises(TopologyError):
            spec.preferred_gpu_set(9)

    def test_gpu_name_bounds(self):
        spec = ibm_ac922()
        assert spec.gpu_name(3) == "gpu3"
        with pytest.raises(TopologyError):
            spec.gpu_name(4)

    def test_power9_has_no_x86_simd(self):
        assert not ibm_ac922().cpu.has_x86_simd
        assert "simd_lsb" not in ibm_ac922().cpu.sort_rates
        assert "simd_lsb" in dgx_a100().cpu.sort_rates


class TestTopologyShapes:
    def test_ac922_p2p_pairs(self):
        topo = ibm_ac922().topology
        assert topo.has_direct_p2p("gpu0", "gpu1")
        assert topo.has_direct_p2p("gpu2", "gpu3")
        assert not topo.has_direct_p2p("gpu0", "gpu2")
        assert not topo.has_direct_p2p("gpu1", "gpu2")

    def test_delta_p2p_pairs(self):
        topo = delta_d22x().topology
        assert topo.has_direct_p2p("gpu0", "gpu1")
        assert topo.has_direct_p2p("gpu0", "gpu2")
        assert topo.has_direct_p2p("gpu2", "gpu3")
        assert topo.has_direct_p2p("gpu1", "gpu3")
        # Section 4.3: pairs (0, 3) and (1, 2) are not interconnected.
        assert not topo.has_direct_p2p("gpu0", "gpu3")
        assert not topo.has_direct_p2p("gpu1", "gpu2")

    def test_dgx_all_to_all(self):
        topo = dgx_a100().topology
        for a in range(8):
            for b in range(a + 1, 8):
                assert topo.has_direct_p2p(f"gpu{a}", f"gpu{b}")

    def test_dgx_shared_pcie_switch_pairs(self):
        spec = dgx_a100()
        # GPUs 0 and 1 route through the same switch uplink; 0 and 2
        # do not (Figure 4).
        r0 = spec.topology.route("cpu0", "gpu0")
        r1 = spec.topology.route("cpu0", "gpu1")
        r2 = spec.topology.route("cpu0", "gpu2")
        uplink = {r.name for r, _ in r0.hops} & {r.name for r, _ in r1.hops}
        assert any("uplink" in name for name in uplink)
        shared_02 = ({r.name for r, _ in r0.hops}
                     & {r.name for r, _ in r2.hops})
        assert not any("uplink" in name for name in shared_02)

    def test_ac922_remote_gpu_bottleneck_is_xbus(self):
        route = ibm_ac922().topology.route("cpu0", "gpu2")
        assert route.bottleneck == pytest.approx(gb(41.0))


class TestSystemBuilder:
    def test_custom_machine(self):
        builder = SystemBuilder("toy", "Toy")
        builder.add_numa_node(read_bw=gb(100), write_bw=gb(90),
                              capacity=gib(128))
        builder.add_gpu(numa=0, spec=SystemBuilder.v100_spec(),
                        link=LinkKind.PCIE3, bandwidth=gb(12.5))
        builder.add_gpu(numa=0, spec=SystemBuilder.v100_spec(),
                        link=LinkKind.PCIE3, bandwidth=gb(12.5))
        builder.connect_gpus(0, 1, LinkKind.NVLINK2, gb(48.0))
        spec = builder.build(cpu=SystemBuilder.generic_cpu())
        assert spec.num_gpus == 2
        assert spec.topology.has_direct_p2p("gpu0", "gpu1")

    def test_builder_requires_numa_and_gpu(self):
        builder = SystemBuilder("empty")
        with pytest.raises(TopologyError):
            builder.build(cpu=SystemBuilder.generic_cpu())
        builder.add_numa_node(gb(100), gb(100), gib(64))
        with pytest.raises(TopologyError):
            builder.build(cpu=SystemBuilder.generic_cpu())

    def test_nvswitch_builder(self):
        builder = SystemBuilder("switchy")
        builder.add_numa_node(gb(100), gb(100), gib(64))
        for _ in range(4):
            builder.add_gpu(numa=0, spec=SystemBuilder.a100_spec(),
                            link=LinkKind.PCIE4, bandwidth=gb(24.5))
        builder.add_nvswitch(gb(279.0), range(4))
        spec = builder.build(cpu=SystemBuilder.generic_cpu())
        assert spec.topology.has_direct_p2p("gpu0", "gpu3")

    def test_switch_hierarchy(self):
        builder = SystemBuilder("switched")
        builder.add_numa_node(gb(100), gb(100), gib(64))
        switch = builder.add_switch("sw0", numa=0, kind=LinkKind.PCIE4,
                                    uplink_fwd=gb(24.5))
        builder.add_gpu(numa=0, spec=SystemBuilder.a100_spec(),
                        link=LinkKind.PCIE4, bandwidth=gb(24.5), via=switch)
        spec = builder.build(cpu=SystemBuilder.generic_cpu())
        route = spec.topology.route("cpu0", "gpu0")
        assert [r.name for r, _ in route.hops][1].startswith("pcie4_uplink")
