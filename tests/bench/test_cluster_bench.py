"""Tests of the multi-node cluster benchmark (``cluster``)."""

import json

import pytest

from repro.bench.experiments import cluster
from repro.bench.experiments.cluster import (
    GATE_MIN_RATIO,
    ScenarioResult,
    _check_gate,
    run_cluster,
    run_scenario,
)
from repro.bench.harness import experiment_by_id
from repro.errors import ReproError


def test_registered_in_harness():
    experiment = experiment_by_id("cluster")
    assert experiment.runner is cluster.run_cluster_entry


def test_scenario_counters_and_throughput():
    result = run_scenario("dgx-a100", 2, "fat-tree")
    assert result.nodes == 2
    assert result.counts["gpus"] == 16
    assert result.counts["cluster_nodes"] == 2
    assert result.sim_s > 0
    assert result.events > 0
    assert result.sorted_gb_per_s > 0
    assert result.events_per_sec > 0
    # One batched all-to-all start per exchange wave (N - 1 waves).
    assert result.batched_starts == 1
    for key in ("hits", "misses", "hit_rate", "invalidations"):
        assert key in result.routing


def test_quick_sweep_record_structure(tmp_path):
    json_path = tmp_path / "cluster.json"
    table = run_cluster(quick=True, json_path=str(json_path))
    # 3 fabrics x 1 node count on dgx + 2 other platforms.
    assert len(table.rows) == 5
    record = json.loads(json_path.read_text())
    assert record["benchmark"] == "cluster"
    assert "gate" not in record  # quick runs skip the 64-node gate
    scenario = record["scenarios"]["dgx-a100-x4-fat-tree"]
    assert scenario["nodes"] == 4
    assert scenario["gpus"] == 32
    assert scenario["events_per_sec"] > 0
    # Provenance carries the largest graph's topology counts.
    topology = record["provenance"]["topology"]
    assert topology["cluster_nodes"] == 4
    assert topology["gpus"] == 32
    assert topology["links"] > 0


def test_quick_default_path_does_not_clobber_committed_record(tmp_path,
                                                              monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_cluster(quick=True, json_path="BENCH_cluster.json")
    assert not (tmp_path / "BENCH_cluster.json").exists()


def _synthetic(fabric, nodes, events_per_wall, links):
    return ScenarioResult(
        name=f"dgx-a100-x{nodes}-{fabric}", nodes=nodes, fabric=fabric,
        counts={"gpus": 8 * nodes, "links": links, "vertices": 0,
                "cluster_nodes": nodes},
        sim_s=1.0, wall_s=1.0, logical_bytes=1e9,
        events=int(events_per_wall), full_reallocations=0,
        batched_starts=0, routing={})


def test_gate_passes_on_sublinear_degradation():
    results = [_synthetic("fat-tree", 4, 100_000, 100),
               _synthetic("fat-tree", 64, 40_000, 700)]
    gate = _check_gate(results)
    fabrics = gate["fabrics"]
    assert fabrics["fat-tree"]["events_ratio"] == pytest.approx(0.4)
    assert fabrics["fat-tree"]["link_growth"] == pytest.approx(7.0)
    assert gate["min_ratio"] == GATE_MIN_RATIO


def test_gate_raises_below_min_ratio():
    results = [_synthetic("rail", 4, 100_000, 100),
               _synthetic("rail", 64, 10_000, 700)]
    with pytest.raises(ReproError, match="scale-out gate failed on rail"):
        _check_gate(results)
