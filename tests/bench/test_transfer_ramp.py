"""Tests of the latency model and the transfer-size ramp."""

import pytest

from repro.bench.experiments.transfer_ramp import (
    half_bandwidth_size,
    ramp,
    run_transfer_ramp,
    transfer_seconds,
)
from repro.hw.links import LinkKind


class TestLatencyModel:
    def test_all_kinds_have_latency(self):
        for kind in LinkKind:
            assert kind.hop_latency_s >= 0

    def test_small_transfers_are_latency_bound(self):
        tiny = transfer_seconds("ibm-ac922", ("host", 0), ("gpu", 0),
                                1024)
        # 1 KB at 72 GB/s would take 14 ns; latency dominates by orders
        # of magnitude.
        assert tiny > 100 * (1024 / 72e9)

    def test_large_transfers_reach_line_rate(self):
        seconds = transfer_seconds("ibm-ac922", ("host", 0), ("gpu", 0),
                                   4e9)
        assert 4e9 / seconds / 1e9 == pytest.approx(72.0, rel=0.01)

    def test_remote_paths_pay_more_latency(self):
        local = transfer_seconds("ibm-ac922", ("host", 0), ("gpu", 0),
                                 1024)
        remote = transfer_seconds("ibm-ac922", ("host", 0), ("gpu", 2),
                                  1024)
        assert remote > local


class TestRamp:
    def test_monotone_nondecreasing_bandwidth(self):
        points = ramp("dgx-a100", ("gpu", 0), ("gpu", 1))
        rates = [rate for _, rate in points]
        assert all(a <= b * 1.001 for a, b in zip(rates, rates[1:]))

    def test_half_bandwidth_point_near_latency_bandwidth_product(self):
        points = ramp("delta-d22x", ("host", 0), ("gpu", 0))
        half = half_bandwidth_size(points)
        # PCIe 3.0: ~12 GB/s x ~12 us fixed cost -> low hundreds of KB.
        assert 1e4 < half < 1e7

    def test_table_renders(self):
        table = run_transfer_ramp()
        assert len(table.rows) >= 10
