"""Tests of the functional-kernel throughput benchmark (``kernels``).

The plain tests validate registration and the quick suite's table/JSON
shape; the ``perf``-marked test asserts the headline optimization — the
vectorized scatter beating the per-bucket reference by >=5x on one
million keys — and only fails on a gross regression of the kernel
layer.  Deselect with ``-m 'not perf'``.
"""

import json

import pytest

from repro.bench.experiments import kernels
from repro.bench.harness import experiment_by_id


def test_registered_in_harness():
    experiment = experiment_by_id("kernels")
    assert experiment.runner is kernels.run_kernels_entry


def test_quick_suite_metrics_and_json(tmp_path):
    json_path = tmp_path / "kernels.json"
    table = kernels.run_kernels(quick=True, repeats=1,
                                json_path=str(json_path))
    assert len(table.rows) == 5
    record = json.loads(json_path.read_text())
    assert record["benchmark"] == "kernels"
    scenarios = record["scenarios"]
    for name in ("scatter-100k", "paradis-50k", "lsb-200k", "merge-8x4k"):
        scenario = scenarios[name]
        assert scenario["keys"] > 0
        assert scenario["wall_s"] > 0
        assert scenario["keys_per_sec"] > 0
        # Live reference baselines accompany every kernel scenario.
        assert scenario["ref_wall_s"] > 0
        assert scenario["speedup"] > 0
        assert scenario["ref_source"] == "reference-impl"
    e2e = scenarios["p2p-8gpu-200k-int32"]
    assert e2e["wall_s"] > 0
    # The quick e2e size has no recorded seed baseline.
    assert "ref_wall_s" not in e2e


def test_quick_default_json_path_is_protected(tmp_path, monkeypatch):
    # A quick run pointed at the committed record must not clobber it.
    monkeypatch.chdir(tmp_path)
    kernels.run_kernels(quick=True, repeats=1,
                        json_path="BENCH_kernels.json")
    assert not (tmp_path / "BENCH_kernels.json").exists()


def test_committed_bench_record_meets_targets():
    # The committed record must witness the optimization: >=10x on the
    # scatter and >=5x on PARADIS at one million keys, and an
    # end-to-end improvement over the seed tree.
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"
    record = json.loads(path.read_text())
    scenarios = record["scenarios"]
    assert scenarios["scatter-1m"]["speedup"] >= 10.0
    assert scenarios["paradis-1m"]["speedup"] >= 5.0
    assert scenarios["p2p-8gpu-2m-int32"]["speedup"] > 1.0


@pytest.mark.perf
def test_scatter_beats_reference_by_5x_on_1m_keys():
    result = kernels.run_scatter(1_000_000, repeats=3)
    assert result.speedup is not None
    assert result.speedup >= 5.0, (
        f"vectorized scatter only {result.speedup:.1f}x over the "
        "per-bucket reference on 1M keys: gross kernel regression")
