"""Unit tests of the experiment registry and CLI."""

import pytest

from repro.bench import EXPERIMENTS, experiment_by_id
from repro.bench.__main__ import main
from repro.errors import ReproError


class TestRegistry:
    def test_every_paper_artifact_is_covered(self):
        ids = {e.id for e in EXPERIMENTS}
        for required in ("table2", "fig1", "fig2", "fig3", "fig4", "fig5",
                         "fig6", "fig7", "fig12", "fig13", "fig14",
                         "fig15a", "fig15b", "fig16"):
            assert required in ids

    def test_lookup(self):
        assert experiment_by_id("fig1").id == "fig1"

    def test_unknown_id(self):
        with pytest.raises(ReproError):
            experiment_by_id("fig99")

    def test_experiments_have_unique_ids(self):
        ids = [e.id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_run_returns_tables(self):
        tables = experiment_by_id("table2").run()
        assert tables and tables[0].rows


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out

    def test_run_one(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "thrust" in out
