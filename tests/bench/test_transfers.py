"""Unit tests of the transfer measurement harness."""

import pytest

from repro.bench.transfers import (
    bidir,
    dtoh,
    gpu,
    htod,
    measure_throughput,
    p2p,
    p2p_bidir,
)
from repro.errors import ReproError
from repro.hw import ibm_ac922


class TestDescriptors:
    def test_htod_dtoh(self):
        assert htod(3) == (("host", 0), ("gpu", 3))
        assert dtoh(3, numa=1) == (("gpu", 3), ("host", 1))

    def test_bidir_is_both_directions(self):
        assert bidir(2) == [htod(2), dtoh(2)]

    def test_p2p(self):
        assert p2p(0, 3) == (("gpu", 0), ("gpu", 3))
        assert p2p_bidir(0, 3) == [p2p(0, 3), p2p(3, 0)]


class TestMeasurement:
    def test_accepts_spec_or_builder(self):
        serial = measure_throughput(ibm_ac922, [htod(0)])
        also = measure_throughput(ibm_ac922(), [htod(0)])
        assert serial == pytest.approx(also)

    def test_serial_htod_matches_figure2(self):
        assert measure_throughput(ibm_ac922, [htod(0)]) == \
            pytest.approx(72.0, rel=0.01)

    def test_empty_transfer_list_rejected(self):
        with pytest.raises(ReproError):
            measure_throughput(ibm_ac922, [])

    def test_unknown_endpoint_kind_rejected(self):
        with pytest.raises(ReproError):
            measure_throughput(ibm_ac922, [(("nic", 0), ("gpu", 0))])

    def test_pageable_measurement_is_slower(self):
        pinned = measure_throughput(ibm_ac922, [htod(0)], pinned=True)
        pageable = measure_throughput(ibm_ac922, [htod(0)], pinned=False)
        assert pageable < pinned

    def test_gpu_endpoint_shorthand(self):
        assert gpu(5) == ("gpu", 5)
