"""Checked-in BENCH records must come from a clean tree.

A ``BENCH_*.json`` whose provenance says ``dirty: true`` cannot be
traced back to the commit it claims — the numbers may include
uncommitted changes.  ``write_bench_record`` warns when it produces
one; this test makes CI fail if one is ever committed anyway.
"""

import importlib
import json
from pathlib import Path

import pytest

from repro.bench.report import write_bench_record

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_repo_has_bench_records():
    assert BENCH_FILES, "expected committed BENCH_*.json records"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_committed_bench_record_is_from_clean_tree(path):
    with path.open() as handle:
        record = json.load(handle)
    provenance = record.get("provenance", {})
    assert provenance.get("dirty") is not True, (
        f"{path.name} was produced from a dirty working tree; regenerate "
        "it from a clean checkout so its numbers are traceable to "
        f"commit {provenance.get('commit')}")


def _provenance_module():
    # ``repro.obs`` re-exports a ``provenance`` *function* that shadows
    # the submodule on attribute lookup; fetch the module itself.
    return importlib.import_module("repro.obs.provenance")


def test_writer_warns_on_dirty_tree(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(
        _provenance_module(), "git_revision",
        lambda cwd=None: {"commit": "deadbeef", "dirty": True})
    out = tmp_path / "BENCH_test.json"
    write_bench_record(str(out), {"benchmark": "test", "scenarios": {}})
    err = capsys.readouterr().err
    assert "dirty working tree" in err
    assert out.name in err
    # The record itself still gets written (warning, not refusal).
    assert json.loads(out.read_text())["provenance"]["dirty"] is True


def test_writer_quiet_on_clean_tree(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(
        _provenance_module(), "git_revision",
        lambda cwd=None: {"commit": "deadbeef", "dirty": False})
    out = tmp_path / "BENCH_test.json"
    write_bench_record(str(out), {"benchmark": "test", "scenarios": {}})
    assert capsys.readouterr().err == ""
