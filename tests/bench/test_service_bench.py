"""Tests of the service benchmark: load points, breaker scenario,
record shape."""

import json

import pytest

from repro.bench.experiments.service import (
    run_breaker_scenario,
    run_load_point,
    run_service,
)


@pytest.fixture(scope="module")
def load_point():
    return run_load_point("ibm-ac922", 1.0, jobs=12)


class TestLoadPoint:
    def test_all_jobs_accounted_for(self, load_point):
        point = load_point
        assert point.offered == 12
        assert point.completed + point.rejected + point.deadline \
            + point.failed == 12

    def test_healthy_load_mostly_completes(self, load_point):
        assert load_point.completed >= 10
        assert 0.0 < load_point.p50_latency_s \
            <= load_point.p99_latency_s

    def test_to_json_round_trips(self, load_point):
        payload = json.loads(json.dumps(load_point.to_json()))
        assert payload["system"] == "ibm-ac922"
        assert payload["load"] == 1.0
        assert payload["rejection_rate"] \
            == pytest.approx(load_point.rejected / 12)
        assert payload["peak_queue"] >= 0

    def test_same_point_is_deterministic(self, load_point):
        again = run_load_point("ibm-ac922", 1.0, jobs=12)
        assert again.to_json() == load_point.to_json()


class TestBreakerScenario:
    def test_straggler_trips_after_threshold(self):
        scenario = run_breaker_scenario("ibm-ac922", jobs=20)
        assert scenario.straggler_gpu in scenario.quarantined
        assert scenario.jobs_to_trip == 3
        assert scenario.post_trip_uses == 0
        assert scenario.plan_roundtrip_ok


class TestRecord:
    def test_quick_record_covers_all_scenarios(self, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "BENCH_service.json"
        tables = run_service(quick=True, json_path=str(path))
        assert len(tables) == 2
        record = json.loads(path.read_text())
        assert record["benchmark"] == "service"
        assert record["quick"] is True
        scenarios = record["scenarios"]
        for system in ("ibm-ac922", "delta-d22x", "dgx-a100"):
            for load in ("x0.5", "x1", "x2"):
                assert f"{system}-{load}" in scenarios
            assert f"{system}-breaker" in scenarios
        assert "provenance" in record
        # The acceptance property: 2x overload sheds typed load and
        # keeps admitted-job p99 within 2x of the 1x value.
        for system in ("ibm-ac922", "delta-d22x", "dgx-a100"):
            at_1x = scenarios[f"{system}-x1"]
            at_2x = scenarios[f"{system}-x2"]
            assert at_2x["rejected"] > 0
            assert set(at_2x["rejections"]) \
                <= {"queue-full", "deadline-infeasible",
                    "quota-exceeded", "draining"}
            assert at_2x["p99_latency_s"] \
                <= 2.0 * at_1x["p99_latency_s"]
