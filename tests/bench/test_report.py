"""Unit tests of the reporting tables."""

import pytest

from repro.bench.report import (
    Table,
    comparison_table,
    format_gbps,
    format_ratio,
    format_seconds,
    series_table,
)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_print_smoke(self, capsys):
        table = Table(["x"])
        table.add_row(1)
        table.print()
        assert "1" in capsys.readouterr().out


class TestFormatters:
    def test_gbps(self):
        assert format_gbps(72.04).strip() == "72.0"

    def test_seconds(self):
        assert format_seconds(0.2456).strip() == "0.246"

    def test_ratio(self):
        assert format_ratio(1.0, 2.0).strip() == "0.50x"
        assert format_ratio(1.0, 0.0).strip() == "n/a"


class TestBuilders:
    def test_comparison_table_with_missing_reference(self):
        table = comparison_table("t", "label",
                                 [("a", 10.0, 20.0), ("b", 5.0, None)])
        text = table.render()
        assert "0.50x" in text
        assert "-" in text

    def test_series_table(self):
        table = series_table("t", "x", [1, 2], ["s1", "s2"],
                             [[0.1, 0.2], [0.3, 0.4]])
        assert len(table.rows) == 2

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            series_table("t", "x", [1, 2], ["s1"], [[0.1]])
