"""Tests of the simulator-core throughput benchmark (``simcore``).

The ``perf``-marked smoke runs the quick suite through the real command
line and enforces a *generous* wall-clock ceiling: it only fails on
gross (multi-x) regressions of the simulator core, never on ordinary
machine-to-machine noise.  Deselect with ``-m 'not perf'``.
"""

import json
import time

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import simcore
from repro.bench.harness import experiment_by_id

#: Quick suite today runs in ~1-2 s; the seed tree needed ~4-5 s.  The
#: ceiling therefore only trips on an order-of-magnitude regression.
QUICK_CEILING_S = 30.0


def test_registered_in_harness():
    experiment = experiment_by_id("simcore")
    assert experiment.runner is simcore.run_simcore_entry


def test_quick_suite_metrics_and_json(tmp_path):
    json_path = tmp_path / "simcore.json"
    table = simcore.run_simcore(quick=True, repeats=1,
                                json_path=str(json_path))
    assert len(table.rows) == 2
    record = json.loads(json_path.read_text())
    assert record["benchmark"] == "simcore"
    churn = record["scenarios"]["churn-400"]
    # The churn storm reallocates on every arrival and completion...
    assert churn["full_reallocations"] >= 2 * 400 - 4
    assert churn["events"] > 0
    assert churn["events_per_sec"] > 0
    het = record["scenarios"]["het-8gpu-256b"]
    # ...while the real sort exercises the disjoint fast paths too.
    assert het["fast_starts"] > 0
    assert het["fast_finishes"] > 0
    assert het["full_reallocations"] > 0
    assert het["sim_s"] > 0


def test_committed_bench_record_meets_targets():
    # The committed record must witness the optimization: >=3x on the
    # churn storm and >=1.5x on the end-to-end 8-GPU HET sort.
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_simcore.json"
    record = json.loads(path.read_text())
    scenarios = record["scenarios"]
    assert scenarios["churn-800"]["speedup_vs_seed"] >= 3.0
    assert scenarios["het-8gpu-2048b"]["speedup_vs_seed"] >= 1.5


@pytest.mark.perf
def test_quick_smoke_within_ceiling(monkeypatch, capsys):
    monkeypatch.setattr(simcore, "QUICK", False)
    start = time.perf_counter()
    assert main(["simcore", "--quick"]) == 0
    wall = time.perf_counter() - start
    out = capsys.readouterr().out
    assert "Simulator-core throughput (quick)" in out
    assert wall < QUICK_CEILING_S, (
        f"simcore --quick took {wall:.1f}s (ceiling {QUICK_CEILING_S}s): "
        "gross simulator-core regression")
