"""Unit tests of the buffered SIMD radix sort and library stand-ins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cpuprims import cpu_functional_sort, library_sort, radix_sort_buffered_lsb
from repro.cpuprims.std_sorts import available_cpu_primitives
from repro.cpuprims.stream import merge_saturation, stream_bandwidth
from repro.errors import SortError
from repro.hw import ibm_ac922


class TestBufferedLsb:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32])
    def test_matches_numpy(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = rng.normal(size=1000).astype(dtype)
        else:
            values = rng.integers(-10000, 10000, size=1000).astype(dtype)
        assert np.array_equal(radix_sort_buffered_lsb(values),
                              np.sort(values))

    def test_buffer_flush_boundaries(self, rng):
        # Sizes around multiples of the 16-element staging line.
        for n in (15, 16, 17, 31, 32, 33, 160):
            values = rng.integers(0, 256, size=n).astype(np.int32)
            assert np.array_equal(radix_sort_buffered_lsb(values),
                                  np.sort(values))

    def test_small_inputs(self):
        assert radix_sort_buffered_lsb(np.empty(0, np.int32)).size == 0
        assert list(radix_sort_buffered_lsb(np.array([1], np.int32))) == [1]

    def test_validation(self):
        with pytest.raises(SortError):
            radix_sort_buffered_lsb(np.zeros((2, 2), np.int32))
        with pytest.raises(SortError):
            radix_sort_buffered_lsb(np.arange(4, dtype=np.int32),
                                    radix_bits=0)

    @given(hnp.arrays(np.int32, st.integers(0, 200),
                      elements=st.integers(-1000, 1000)))
    @settings(max_examples=30, deadline=None)
    def test_property_sorted(self, values):
        assert np.array_equal(radix_sort_buffered_lsb(values),
                              np.sort(values))


class TestLibrarySorts:
    @pytest.mark.parametrize("flavour", ["gnu_parallel", "tbb", "std_par"])
    def test_flavours_sort(self, flavour, rng):
        values = rng.integers(0, 100, size=500).astype(np.int32)
        assert np.array_equal(library_sort(values, flavour),
                              np.sort(values))

    def test_unknown_flavour(self):
        with pytest.raises(SortError):
            library_sort(np.zeros(3, np.int32), "bogo")

    def test_dispatch_covers_all_primitives(self, rng):
        values = rng.integers(0, 1000, size=400).astype(np.int32)
        for primitive in available_cpu_primitives():
            sort = cpu_functional_sort(primitive)
            assert np.array_equal(sort(values), np.sort(values)), primitive

    def test_unknown_primitive(self):
        with pytest.raises(SortError):
            cpu_functional_sort("bogosort")


class TestStreamModel:
    def test_stream_bandwidth_fraction(self):
        assert stream_bandwidth(100e9) == pytest.approx(78e9)

    def test_merge_saturation_counts_read_and_write(self):
        cpu = ibm_ac922().cpu
        expected = 2 * cpu.multiway_merge_rate / cpu.stream_bw
        assert merge_saturation(cpu) == pytest.approx(expected)
        # The paper's band (Section 5.3).
        assert 0.5 < merge_saturation(cpu) < 1.0
