"""Unit and property tests of the loser tree and multiway merges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpuprims import (
    LoserTree,
    multiway_merge,
    multiway_merge_losertree,
)
from repro.errors import SortError


def sorted_runs(rng, k, max_len=300):
    return [np.sort(rng.integers(0, 1000,
                                 size=int(rng.integers(0, max_len)))
                    .astype(np.int32))
            for _ in range(k)]


class TestLoserTree:
    def test_winner_is_minimum(self):
        tree = LoserTree([5, 2, 9, 1])
        assert tree.winner == 3
        assert tree.winner_key == 1

    def test_replace_winner_replays_path(self):
        tree = LoserTree([5, 2, 9, 1])
        tree.replace_winner(10)   # run 3's next key
        assert tree.winner == 1
        assert tree.winner_key == 2

    def test_exhaustion(self):
        tree = LoserTree([3, 7])
        tree.exhaust_winner()
        assert tree.winner == 1
        tree.exhaust_winner()
        assert tree.exhausted

    def test_single_run(self):
        tree = LoserTree([42])
        assert tree.winner == 0
        tree.exhaust_winner()
        assert tree.exhausted

    def test_non_power_of_two_runs(self):
        tree = LoserTree([4, 1, 3, 5, 2])
        drained = []
        for _ in range(5):
            drained.append(tree.winner_key)
            tree.exhaust_winner()
        assert drained == [1, 2, 3, 4, 5]

    def test_ties_resolve_to_a_run(self):
        tree = LoserTree([1, 1, 1])
        assert tree.winner in (0, 1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoserTree([])

    def test_full_drain_with_refills(self, rng):
        runs = [sorted(rng.integers(0, 100, size=20).tolist())
                for _ in range(6)]
        positions = [0] * 6
        tree = LoserTree([runs[i][0] for i in range(6)])
        out = []
        for _ in range(120):
            run = tree.winner
            out.append(runs[run][positions[run]])
            positions[run] += 1
            if positions[run] < len(runs[run]):
                tree.replace_winner(runs[run][positions[run]])
            else:
                tree.exhaust_winner()
        assert out == sorted(x for run in runs for x in run)
        assert tree.exhausted


@pytest.mark.parametrize("merge", [multiway_merge, multiway_merge_losertree])
class TestMultiwayMerge:
    def test_matches_numpy(self, merge, rng):
        runs = sorted_runs(rng, 7)
        assert np.array_equal(merge(runs),
                              np.sort(np.concatenate(runs)))

    def test_single_run(self, merge, rng):
        run = np.sort(rng.integers(0, 50, size=30).astype(np.int32))
        assert np.array_equal(merge([run]), run)

    def test_empty_runs_mixed_in(self, merge, rng):
        runs = [np.empty(0, np.int32), np.arange(5, dtype=np.int32),
                np.empty(0, np.int32)]
        assert np.array_equal(merge(runs), np.arange(5, dtype=np.int32))

    def test_no_runs_rejected(self, merge):
        with pytest.raises(SortError):
            merge([])

    def test_dtype_mismatch_rejected(self, merge):
        with pytest.raises(SortError):
            merge([np.zeros(2, np.int32), np.zeros(2, np.int64)])

    def test_many_runs(self, merge, rng):
        runs = sorted_runs(rng, 33, max_len=40)
        assert np.array_equal(merge(runs),
                              np.sort(np.concatenate(runs)))

    @given(st.lists(st.lists(st.integers(-50, 50), max_size=40),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_property_merge(self, merge, raw_runs):
        runs = [np.sort(np.array(r, dtype=np.int64)) for r in raw_runs]
        expected = np.sort(np.concatenate(runs)) if runs else None
        assert np.array_equal(merge(runs), expected)


class TestImplementationsAgree:
    def test_both_merges_identical_output(self, rng):
        runs = sorted_runs(rng, 9)
        assert np.array_equal(multiway_merge(runs),
                              multiway_merge_losertree(runs))
