"""Unit and property tests of PARADIS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SortError
from repro.cpuprims import paradis_sort


class TestParadis:
    @pytest.mark.parametrize("dtype", [np.int32, np.uint32, np.int64,
                                       np.float32, np.float64])
    def test_matches_numpy(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = rng.normal(size=2000).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, size=2000,
                                  dtype=dtype)
        assert np.array_equal(paradis_sort(values), np.sort(values))

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 7, 16])
    def test_worker_count_does_not_change_result(self, workers, rng):
        values = rng.integers(0, 50, size=1500).astype(np.int32)
        assert np.array_equal(paradis_sort(values, workers=workers),
                              np.sort(values))

    def test_heavy_duplicates_exercise_repair(self, rng):
        # Few distinct values force stripe overflows and repair rounds.
        values = rng.integers(0, 3, size=3000).astype(np.int32)
        assert np.array_equal(paradis_sort(values, workers=8),
                              np.sort(values))

    def test_adversarial_distributions(self):
        cases = [
            np.arange(1000, dtype=np.int32)[::-1].copy(),
            np.zeros(777, dtype=np.int64),
            np.tile(np.array([5, -5], np.int32), 400),
            np.repeat(np.arange(4, dtype=np.int32), 250),
        ]
        for values in cases:
            assert np.array_equal(paradis_sort(values), np.sort(values))

    def test_small_inputs(self):
        assert paradis_sort(np.empty(0, np.int32)).size == 0
        assert list(paradis_sort(np.array([2], np.int32))) == [2]

    def test_input_unmodified(self, rng):
        values = rng.integers(0, 100, size=300).astype(np.int32)
        snapshot = values.copy()
        paradis_sort(values)
        assert np.array_equal(values, snapshot)

    def test_parameter_validation(self):
        with pytest.raises(SortError):
            paradis_sort(np.arange(4, dtype=np.int32), radix_bits=0)
        with pytest.raises(SortError):
            paradis_sort(np.arange(4, dtype=np.int32), workers=0)
        with pytest.raises(SortError):
            paradis_sort(np.zeros((2, 2), np.int32))

    @pytest.mark.parametrize("radix_bits", [2, 4, 8, 11])
    def test_digit_width(self, radix_bits, rng):
        values = rng.integers(-10_000, 10_000, size=800).astype(np.int32)
        assert np.array_equal(
            paradis_sort(values, radix_bits=radix_bits), np.sort(values))

    @given(hnp.arrays(np.int32, st.integers(0, 400),
                      elements=st.integers(-100, 100)),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_sorted(self, values, workers):
        assert np.array_equal(paradis_sort(values, workers=workers),
                              np.sort(values))
