"""Tests of the HET sort extensions: GPU-merged chunk groups and
NUMA-aware input placement."""

import numpy as np
import pytest

from repro.errors import SortError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import HetConfig, P2PConfig, het_sort, p2p_sort


def out_of_core(scale=3_000_000):
    return Machine(ibm_ac922(), scale=scale, fast_functional=False)


class TestGpuMergedGroups:
    def test_out_of_core_correctness(self, rng):
        keys = rng.integers(0, 1 << 30, size=60_000).astype(np.int32)
        result = het_sort(out_of_core(), keys, gpu_ids=(0, 1, 2, 3),
                          config=HetConfig(gpu_merge_groups=True))
        assert result.chunk_groups > 1
        assert np.array_equal(result.output, np.sort(keys))

    def test_with_values(self, rng):
        keys = rng.integers(0, 1 << 30, size=50_000).astype(np.int32)
        values = np.arange(50_000, dtype=np.int64)
        result = het_sort(out_of_core(), keys, gpu_ids=(0, 1, 2, 3),
                          values=values,
                          config=HetConfig(gpu_merge_groups=True))
        assert np.array_equal(keys[result.output_values], result.output)

    def test_in_core_single_group(self, dgx, rng):
        keys = rng.integers(0, 5000, size=4096).astype(np.int32)
        result = het_sort(dgx, keys, gpu_ids=(0, 1, 2, 3),
                          config=HetConfig(gpu_merge_groups=True))
        assert np.array_equal(result.output, np.sort(keys))

    def test_ragged_last_group_falls_back(self, rng):
        # A size whose last group is not uniform still sorts correctly.
        keys = rng.integers(0, 1 << 30, size=50_001).astype(np.int32)
        result = het_sort(out_of_core(), keys, gpu_ids=(0, 1, 2, 3),
                          config=HetConfig(gpu_merge_groups=True))
        assert np.array_equal(result.output, np.sort(keys))

    def test_reduces_final_merge_load_on_ac922(self, rng):
        # Section 7: a P2P-based GPU merge for large data.  On the
        # AC922, whose CPU merge degrades sharply with many sublists,
        # merging each group on the GPUs should win clearly.
        keys = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        scale = 32e9 / keys.size

        def run(gpu_merge: bool) -> float:
            machine = Machine(ibm_ac922(), scale=scale,
                              fast_functional=True)
            return het_sort(machine, keys, gpu_ids=(0, 1),
                            config=HetConfig(
                                gpu_merge_groups=gpu_merge)).duration

        assert run(True) < 0.7 * run(False)

    def test_requires_power_of_two_gpus(self, dgx, rng):
        keys = rng.integers(0, 100, size=3000).astype(np.int32)
        with pytest.raises(SortError, match="power-of-two"):
            het_sort(dgx, keys, gpu_ids=(0, 2, 4),
                     config=HetConfig(gpu_merge_groups=True))

    def test_incompatible_with_3n(self, dgx):
        with pytest.raises(SortError, match="2n"):
            het_sort(dgx, np.arange(8, dtype=np.int32),
                     config=HetConfig(gpu_merge_groups=True,
                                      approach="3n"))

    def test_incompatible_with_eager_merge(self, dgx):
        with pytest.raises(SortError, match="mutually"):
            het_sort(dgx, np.arange(8, dtype=np.int32),
                     config=HetConfig(gpu_merge_groups=True,
                                      eager_merge=True))


class TestNumaPlacement:
    def test_functional_equivalence(self, rng):
        keys = rng.integers(0, 1 << 30, size=4096).astype(np.int32)
        base = p2p_sort(Machine(ibm_ac922(), scale=1), keys,
                        gpu_ids=(0, 1, 2, 3))
        local = p2p_sort(Machine(ibm_ac922(), scale=1), keys,
                         gpu_ids=(0, 1, 2, 3),
                         config=P2PConfig(input_placement="numa-local"))
        assert np.array_equal(base.output, local.output)

    def test_local_placement_speeds_up_remote_gpus(self, rng):
        keys = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        scale = 2e9 / keys.size

        def run(**cfg) -> float:
            machine = Machine(ibm_ac922(), scale=scale,
                              fast_functional=True)
            return p2p_sort(machine, keys, gpu_ids=(0, 1, 2, 3),
                            config=P2PConfig(**cfg)).duration

        node0 = run()
        local = run(input_placement="numa-local",
                    charge_redistribution=False)
        shuffled = run(input_placement="numa-local",
                       charge_redistribution=True)
        # Discussion/Section 7: remote GPUs are only infeasible when
        # the data sits on one node.  Local placement removes the X-Bus
        # from the copy phases; even paying the one-time shuffle wins.
        assert local < 0.7 * node0
        assert local < shuffled < node0

    def test_redistribution_phase_recorded(self, rng):
        keys = rng.integers(0, 1 << 30, size=50_000).astype(np.int32)
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        result = p2p_sort(machine, keys, gpu_ids=(0, 1, 2, 3),
                          config=P2PConfig(input_placement="numa-local"))
        assert "Redistribute" in result.phase_durations

    def test_no_redistribution_for_local_gpus_only(self, rng):
        # GPUs 0 and 1 live on node 0 already: nothing to shuffle.
        keys = rng.integers(0, 1 << 30, size=50_000).astype(np.int32)
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        result = p2p_sort(machine, keys, gpu_ids=(0, 1),
                          config=P2PConfig(input_placement="numa-local"))
        assert "Redistribute" not in result.phase_durations

    def test_placement_on_dgx_changes_little(self, rng):
        # The DGX's Infinity Fabric is wide enough that placement
        # barely matters for HtoD (Figure 4: remote ~ local).
        keys = rng.integers(0, 1 << 30, size=50_000).astype(np.int32)
        scale = 2e9 / keys.size

        def run(placement) -> float:
            machine = Machine(dgx_a100(), scale=scale,
                              fast_functional=True)
            return p2p_sort(machine, keys,
                            config=P2PConfig(
                                input_placement=placement,
                                charge_redistribution=False)).duration

        assert run("numa-local") == pytest.approx(run("node0"), rel=0.25)

    def test_unknown_placement_rejected(self, ac922):
        with pytest.raises(SortError, match="input_placement"):
            p2p_sort(ac922, np.arange(8, dtype=np.int32), gpu_ids=(0, 1),
                     config=P2PConfig(input_placement="interleaved"))
