"""Unit tests of the P2P block swap helpers."""

import numpy as np
import pytest

from repro.errors import SortError
from repro.sort.swap import block_swap_sizes, swap_and_merge_pair
from repro.sort.p2p import _Chunk


class TestBlockSwapSizes:
    def test_pivot_within_inner_pair(self):
        # 4 chunks of 100; pivot 60 stays inside the innermost pair.
        assert block_swap_sizes(60, chunk=100, pairs=2) == (60, 0)

    def test_pivot_spills_to_outer_pair(self):
        # Figure 9: pivot beyond one chunk swaps C1<->C2 entirely and
        # pivot blocks between C0 and C3.
        assert block_swap_sizes(130, chunk=100, pairs=2) == (100, 30)

    def test_full_swap(self):
        assert block_swap_sizes(200, chunk=100, pairs=2) == (100, 100)

    def test_zero_pivot(self):
        assert block_swap_sizes(0, chunk=100, pairs=2) == (0, 0)

    def test_eight_gpu_stage(self):
        assert block_swap_sizes(250, chunk=100, pairs=4) == \
            (100, 100, 50, 0)

    def test_sizes_sum_to_pivot(self):
        for pivot in range(0, 401, 7):
            assert sum(block_swap_sizes(pivot, 100, 4)) == pivot

    def test_out_of_range_rejected(self):
        with pytest.raises(SortError):
            block_swap_sizes(201, chunk=100, pairs=2)
        with pytest.raises(SortError):
            block_swap_sizes(-1, chunk=100, pairs=2)


class TestSwapAndMergePair:
    def make_chunks(self, machine, left_data, right_data, gpu_a=0, gpu_b=1):
        n = len(left_data)
        chunks = []
        for gpu_id, payload in ((gpu_a, left_data), (gpu_b, right_data)):
            device = machine.device(gpu_id)
            primary = device.alloc(n, np.int32)
            primary.data[:] = payload
            aux = device.alloc(n, np.int32)
            chunks.append(_Chunk(device, primary, aux))
        return chunks

    def test_swap_produces_partition(self, ac922, rng):
        a = np.sort(rng.integers(0, 100, size=64).astype(np.int32))
        b = np.sort(rng.integers(0, 100, size=64).astype(np.int32))
        from repro.sort.pivot import select_pivot
        pivot = select_pivot(a, b)
        left, right = self.make_chunks(ac922, a, b)
        ac922.run(swap_and_merge_pair(ac922, left, right, pivot))
        assert np.all(np.diff(left.primary.data) >= 0)
        assert np.all(np.diff(right.primary.data) >= 0)
        if pivot not in (0,):
            assert left.primary.data[-1] <= right.primary.data[0]
        merged = np.concatenate([left.primary.data, right.primary.data])
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    def test_zero_pivot_moves_nothing(self, ac922):
        a = np.arange(32, dtype=np.int32)
        b = np.arange(32, 64, dtype=np.int32)
        left, right = self.make_chunks(ac922, a, b)
        ac922.run(swap_and_merge_pair(ac922, left, right, 0))
        assert ac922.now == 0.0
        assert np.array_equal(left.primary.data, a)

    def test_full_pivot_swaps_whole_chunks_without_merge(self, ac922):
        a = np.arange(32, 64, dtype=np.int32)
        b = np.arange(32, dtype=np.int32)
        left, right = self.make_chunks(ac922, a, b)

        def run():
            moved = yield from swap_and_merge_pair(ac922, left, right, 32)
            return moved

        moved = ac922.run(run())
        assert np.array_equal(left.primary.data, b)
        assert np.array_equal(right.primary.data, a)
        assert moved == 2 * 32 * 4  # both directions, scale 1

    def test_mismatched_chunks_rejected(self, ac922):
        a = np.arange(32, dtype=np.int32)
        b = np.arange(16, dtype=np.int32)
        left = self.make_chunks(ac922, a, a)[0]
        right = self.make_chunks(ac922, b, b, gpu_a=2, gpu_b=3)[0]
        with pytest.raises(SortError):
            ac922.run(swap_and_merge_pair(ac922, left, right, 1))

    def test_pivot_out_of_range_rejected(self, ac922):
        a = np.arange(8, dtype=np.int32)
        left, right = self.make_chunks(ac922, a, a)
        with pytest.raises(SortError):
            ac922.run(swap_and_merge_pair(ac922, left, right, 9))
