"""Unit and integration tests of the P2P multi-GPU sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.errors import SortError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import P2PConfig, p2p_sort


class TestCorrectness:
    @pytest.mark.parametrize("gpu_ids", [(0,), (0, 1), (0, 1, 2, 3)])
    def test_sorted_output_ac922(self, ac922, gpu_ids, rng):
        data = rng.integers(-1000, 1000, size=4096).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=gpu_ids)
        assert np.array_equal(result.output, np.sort(data))

    def test_eight_gpus_dgx(self, dgx, rng):
        data = rng.integers(0, 1 << 30, size=8192).astype(np.int32)
        result = p2p_sort(dgx, data)
        assert result.gpu_ids == tuple(range(8))
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("distribution", [
        "uniform", "normal", "sorted", "reverse-sorted", "nearly-sorted"])
    def test_all_distributions(self, delta, distribution):
        data = generate(2048, distribution, np.int32, seed=11)
        result = p2p_sort(delta, data, gpu_ids=(0, 1, 2, 3))
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32,
                                       np.float64, np.uint32])
    def test_all_dtypes(self, ac922, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = rng.normal(size=1024).astype(dtype)
        else:
            data = rng.integers(0, 1000, size=1024).astype(dtype)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1))
        assert np.array_equal(result.output, np.sort(data))

    def test_size_not_divisible_by_gpus(self, ac922, rng):
        data = rng.integers(0, 100, size=1001).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1, 2, 3))
        assert result.output.size == 1001
        assert np.array_equal(result.output, np.sort(data))

    def test_duplicate_heavy_input(self, ac922, rng):
        data = rng.integers(0, 3, size=2048).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1, 2, 3))
        assert np.array_equal(result.output, np.sort(data))

    def test_input_not_modified(self, ac922, rng):
        data = rng.integers(0, 100, size=512).astype(np.int32)
        snapshot = data.copy()
        p2p_sort(ac922, data, gpu_ids=(0, 1))
        assert np.array_equal(data, snapshot)

    def test_tiny_input_on_many_gpus(self, dgx):
        data = np.array([3, 1, 2], dtype=np.int32)
        result = p2p_sort(dgx, data, gpu_ids=(0, 1, 2, 3))
        assert list(result.output) == [1, 2, 3]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_property_sorted(self, values):
        machine = Machine(ibm_ac922(), scale=1)
        data = np.array(values, dtype=np.int32)
        result = p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3))
        assert np.array_equal(result.output, np.sort(data))


class TestValidation:
    def test_non_power_of_two_rejected(self, ac922):
        with pytest.raises(SortError, match="power-of-two"):
            p2p_sort(ac922, np.arange(8, dtype=np.int32), gpu_ids=(0, 1, 2))

    def test_duplicate_gpu_ids_rejected(self, ac922):
        with pytest.raises(SortError, match="duplicate"):
            p2p_sort(ac922, np.arange(8, dtype=np.int32), gpu_ids=(0, 0))

    def test_empty_input_rejected(self, ac922):
        with pytest.raises(SortError):
            p2p_sort(ac922, np.empty(0, dtype=np.int32))

    def test_oversized_data_rejected(self):
        machine = Machine(ibm_ac922(), scale=1e9, fast_functional=True)
        data = np.zeros(100_000, dtype=np.int32)  # 400 TB logical
        with pytest.raises(SortError, match="HET sort"):
            p2p_sort(machine, data, gpu_ids=(0, 1))


class TestResultMetadata:
    def test_phases_recorded(self, ac922, rng):
        data = rng.integers(0, 100, size=1024).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1))
        assert set(result.phase_durations) == {"HtoD", "Sort", "Merge",
                                               "DtoH"}
        assert result.duration > 0
        assert result.algorithm == "p2p"

    def test_merge_stage_depth(self, dgx, rng):
        data = rng.integers(0, 100, size=1024).astype(np.int32)
        assert p2p_sort(dgx, data, gpu_ids=(0, 2)).merge_stages == 1
        assert p2p_sort(Machine(dgx_a100(), scale=1), data,
                        gpu_ids=(0, 2, 4, 6)).merge_stages == 3
        assert p2p_sort(Machine(dgx_a100(), scale=1), data).merge_stages == 5

    def test_p2p_bytes_zero_for_sorted_input(self, ac922):
        data = np.arange(1024, dtype=np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1))
        assert result.p2p_bytes == 0.0

    def test_p2p_bytes_maximal_for_reversed_input(self, ac922):
        data = np.arange(1024, dtype=np.int32)[::-1].copy()
        result = p2p_sort(ac922, data, gpu_ids=(0, 1))
        # Full swap: the whole array crosses the interconnect, both
        # chunks, one direction each.
        assert result.p2p_bytes == pytest.approx(1024 * 4)

    def test_logical_keys_respect_scale(self, rng):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        data = rng.integers(0, 100, size=1024).astype(np.int32)
        result = p2p_sort(machine, data, gpu_ids=(0, 1))
        assert result.logical_keys == 1024 * 1000


class TestConfigVariants:
    def test_paper_pivot_variant_sorts(self, ac922, rng):
        data = rng.integers(0, 10, size=2048).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1, 2, 3),
                          config=P2PConfig(leftmost_pivot=False))
        assert np.array_equal(result.output, np.sort(data))

    def test_serialized_swap_sorts_and_is_slower(self, rng):
        data = rng.integers(0, 1 << 20, size=4096).astype(np.int32)
        fast = p2p_sort(Machine(ibm_ac922(), scale=2_000_000,
                                fast_functional=True),
                        data, gpu_ids=(0, 1))
        slow = p2p_sort(Machine(ibm_ac922(), scale=2_000_000,
                                fast_functional=True),
                        data, gpu_ids=(0, 1),
                        config=P2PConfig(out_of_place_swap=False))
        assert np.array_equal(slow.output, np.sort(data))
        assert slow.duration > fast.duration

    def test_other_primitive(self, ac922, rng):
        data = rng.integers(0, 1000, size=1024).astype(np.int32)
        result = p2p_sort(ac922, data, gpu_ids=(0, 1),
                          config=P2PConfig(primitive="stehle"))
        assert np.array_equal(result.output, np.sort(data))


class TestGpuOrderEffect:
    def test_ac922_order_matters(self, rng):
        data = rng.integers(0, 1 << 20, size=4096).astype(np.int32)

        def run(order):
            machine = Machine(ibm_ac922(), scale=2_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=order).duration

        # Section 5.4: (0, 1, 2, 3) pairs NVLink-connected GPUs in the
        # pairwise stages; (0, 2, 1, 3) forces them over the X-Bus.
        assert run((0, 1, 2, 3)) < run((0, 2, 1, 3))

    def test_dgx_order_is_irrelevant(self, rng):
        data = rng.integers(0, 1 << 20, size=4096).astype(np.int32)

        def run(order):
            machine = Machine(dgx_a100(), scale=2_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=order).duration

        assert run((0, 1, 2, 3)) == pytest.approx(run((0, 3, 1, 2)),
                                                  rel=1e-6)
