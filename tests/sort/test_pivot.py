"""Unit and property tests of pivot selection (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.sort.pivot import (
    is_valid_pivot,
    select_pivot,
    select_pivot_paper,
)


def check_partition(a, b, p):
    """Simulate the swap and verify the two-sided partition."""
    n = len(a)
    new_a = np.concatenate([a[:n - p], b[:p]])
    new_b = np.concatenate([a[n - p:], b[p:]])
    if new_a.size and new_b.size:
        assert new_a.max() <= new_b.min()


class TestSelectPivot:
    def test_disjoint_sorted_inputs_need_no_swap(self):
        a = np.arange(10)
        b = np.arange(10, 20)
        assert select_pivot(a, b) == 0

    def test_fully_inverted_inputs_need_full_swap(self):
        a = np.arange(10, 20)
        b = np.arange(10)
        assert select_pivot(a, b) == 10

    def test_interleaved(self):
        a = np.array([0, 2, 4, 6])
        b = np.array([1, 3, 5, 7])
        p = select_pivot(a, b)
        assert is_valid_pivot(a, b, p)
        check_partition(a, b, p)

    def test_all_equal_picks_zero(self):
        a = np.zeros(8, dtype=np.int32)
        b = np.zeros(8, dtype=np.int32)
        # Any pivot is valid; leftmost avoids all P2P traffic.
        assert select_pivot(a, b) == 0

    def test_single_element(self):
        assert select_pivot([5], [3]) == 1
        assert select_pivot([3], [5]) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(SortError):
            select_pivot([1, 2], [3])

    def test_empty_rejected(self):
        with pytest.raises(SortError):
            select_pivot([], [])

    def test_works_on_floats(self, rng):
        a = np.sort(rng.normal(size=50))
        b = np.sort(rng.normal(size=50))
        p = select_pivot(a, b)
        assert is_valid_pivot(a, b, p)
        check_partition(a, b, p)

    @given(st.integers(1, 40), st.integers(1, 10), st.data())
    @settings(max_examples=200, deadline=None)
    def test_property_valid_and_minimal(self, n, spread, data):
        a = np.sort(np.array(data.draw(
            st.lists(st.integers(0, spread), min_size=n, max_size=n))))
        b = np.sort(np.array(data.draw(
            st.lists(st.integers(0, spread), min_size=n, max_size=n))))
        p = select_pivot(a, b)
        assert is_valid_pivot(a, b, p)
        check_partition(a, b, p)
        if p > 0:
            assert not is_valid_pivot(a, b, p - 1)


class TestIsValidPivot:
    def test_out_of_range(self):
        a = np.arange(4)
        assert not is_valid_pivot(a, a, -1)
        assert not is_valid_pivot(a, a, 5)

    def test_valid_set_is_contiguous(self, rng):
        for _ in range(100):
            n = int(rng.integers(1, 20))
            a = np.sort(rng.integers(0, 6, size=n))
            b = np.sort(rng.integers(0, 6, size=n))
            validity = [is_valid_pivot(a, b, p) for p in range(n + 1)]
            assert any(validity)
            first = validity.index(True)
            last = len(validity) - validity[::-1].index(True)
            assert all(validity[first:last])
            assert not any(validity[:first])
            assert not any(validity[last:])


class TestPaperAlgorithm:
    def test_mostly_agrees_on_distinct_keys(self, rng):
        for _ in range(200):
            n = int(rng.integers(1, 30))
            pool = rng.permutation(1000)[:2 * n]
            a = np.sort(pool[:n])
            b = np.sort(pool[n:])
            ours = select_pivot(a, b)
            theirs = select_pivot_paper(a, b)
            if is_valid_pivot(a, b, theirs):
                # A valid Algorithm 1 pivot is never left of leftmost.
                assert theirs >= ours

    def test_leftmost_never_moves_more_data(self, rng):
        for _ in range(200):
            n = int(rng.integers(1, 30))
            a = np.sort(rng.integers(0, 5, size=n))
            b = np.sort(rng.integers(0, 5, size=n))
            ours = select_pivot(a, b)
            theirs = select_pivot_paper(a, b)
            if is_valid_pivot(a, b, theirs):
                assert ours <= theirs
