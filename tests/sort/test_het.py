"""Unit and integration tests of the heterogeneous multi-GPU sort."""

import numpy as np
import pytest

from repro.data import generate
from repro.errors import SortError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import HetConfig, het_sort


def out_of_core_machine(scale=3_000_000):
    """A machine scaled so 60k physical keys span several chunk groups."""
    return Machine(ibm_ac922(), scale=scale, fast_functional=False)


class TestInCore:
    @pytest.mark.parametrize("gpu_ids", [(0,), (0, 1), (0, 1, 2, 3)])
    def test_sorted_output(self, ac922, gpu_ids, rng):
        data = rng.integers(-500, 500, size=3000).astype(np.int32)
        result = het_sort(ac922, data, gpu_ids=gpu_ids)
        assert np.array_equal(result.output, np.sort(data))
        assert result.chunk_groups == 1

    def test_single_gpu_has_no_merge_phase(self, dgx, rng):
        data = rng.integers(0, 100, size=1000).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0,))
        assert "Merge" not in result.phase_durations
        assert np.array_equal(result.output, np.sort(data))

    def test_multi_gpu_has_merge_phase(self, dgx, rng):
        data = rng.integers(0, 100, size=1000).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0, 2))
        assert "Merge" in result.phase_durations

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32,
                                       np.float64])
    def test_dtypes(self, ac922, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = rng.normal(size=2000).astype(dtype)
        else:
            data = rng.integers(0, 10000, size=2000).astype(dtype)
        result = het_sort(ac922, data, gpu_ids=(0, 1))
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("distribution", [
        "uniform", "sorted", "reverse-sorted", "nearly-sorted", "normal"])
    def test_distributions(self, ac922, distribution):
        data = generate(2500, distribution, np.int32, seed=3)
        result = het_sort(ac922, data, gpu_ids=(0, 1, 2, 3))
        assert np.array_equal(result.output, np.sort(data))

    def test_odd_sizes(self, ac922, rng):
        for n in (1, 2, 3, 7, 1013):
            data = rng.integers(0, 50, size=n).astype(np.int32)
            result = het_sort(ac922, data, gpu_ids=(0, 1, 2))
            assert np.array_equal(result.output, np.sort(data)), n

    def test_gpu_count_need_not_be_power_of_two(self, dgx, rng):
        data = rng.integers(0, 1000, size=3000).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0, 2, 4))
        assert np.array_equal(result.output, np.sort(data))


class TestOutOfCore:
    @pytest.mark.parametrize("approach", ["2n", "3n"])
    def test_multiple_chunk_groups(self, approach, rng):
        machine = out_of_core_machine()
        data = rng.integers(0, 1 << 30, size=60_000).astype(np.int32)
        result = het_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                          config=HetConfig(approach=approach))
        assert result.chunk_groups > 1
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("approach", ["2n", "3n"])
    def test_eager_merging_is_correct_but_slower(self, approach, rng):
        data = rng.integers(0, 1 << 30, size=60_000).astype(np.int32)
        plain = het_sort(out_of_core_machine(), data, gpu_ids=(0, 1, 2, 3),
                         config=HetConfig(approach=approach))
        eager = het_sort(out_of_core_machine(), data, gpu_ids=(0, 1, 2, 3),
                         config=HetConfig(approach=approach,
                                          eager_merge=True))
        assert np.array_equal(eager.output, np.sort(data))
        # Section 6.2: eager merging worsens performance.
        assert eager.duration > plain.duration

    def test_3n_uses_smaller_chunks_than_2n(self, rng):
        data = rng.integers(0, 100, size=60_000).astype(np.int32)
        two = het_sort(out_of_core_machine(), data, gpu_ids=(0, 1),
                       config=HetConfig(approach="2n"))
        three = het_sort(out_of_core_machine(), data, gpu_ids=(0, 1),
                         config=HetConfig(approach="3n"))
        assert three.chunk_groups > two.chunk_groups
        assert np.array_equal(two.output, three.output)

    def test_single_gpu_out_of_core(self, rng):
        machine = out_of_core_machine()
        data = rng.integers(0, 1 << 20, size=40_000).astype(np.int32)
        result = het_sort(machine, data, gpu_ids=(0,))
        assert result.chunk_groups > 1
        assert np.array_equal(result.output, np.sort(data))

    def test_uneven_last_group(self, rng):
        machine = out_of_core_machine()
        # A size that does not divide evenly into chunk groups.
        data = rng.integers(0, 1000, size=50_001).astype(np.int32)
        result = het_sort(machine, data, gpu_ids=(0, 1, 2))
        assert np.array_equal(result.output, np.sort(data))


class TestValidation:
    def test_unknown_approach_rejected(self, ac922):
        with pytest.raises(SortError, match="unknown approach"):
            het_sort(ac922, np.arange(8, dtype=np.int32),
                     config=HetConfig(approach="4n"))

    def test_duplicate_gpu_ids_rejected(self, ac922):
        with pytest.raises(SortError, match="duplicate"):
            het_sort(ac922, np.arange(8, dtype=np.int32), gpu_ids=(1, 1))

    def test_empty_input_rejected(self, ac922):
        with pytest.raises(SortError):
            het_sort(ac922, np.empty(0, dtype=np.int32))


class TestResultMetadata:
    def test_result_fields(self, dgx, rng):
        data = rng.integers(0, 100, size=2000).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0, 2))
        assert result.algorithm == "het"
        assert result.system == "dgx-a100"
        assert result.physical_keys == 2000
        assert result.keys_per_second > 0

    def test_phase_fractions(self, dgx, rng):
        data = rng.integers(0, 100, size=2000).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0, 2))
        for phase in ("HtoD", "Sort", "DtoH", "Merge"):
            assert 0 < result.phase_fraction(phase) <= 1

    def test_summary_mentions_algorithm(self, dgx, rng):
        data = rng.integers(0, 100, size=500).astype(np.int32)
        result = het_sort(dgx, data, gpu_ids=(0, 2))
        assert "het" in result.summary()


class TestPaperBehaviours:
    def test_het_slower_than_p2p_on_nvlink_pairs(self, rng):
        from repro.sort import p2p_sort

        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)

        def run(algorithm):
            machine = Machine(ibm_ac922(), scale=2_000_000,
                              fast_functional=True)
            return algorithm(machine, data, gpu_ids=(0, 1)).duration

        # Section 6.1.1: P2P sort outperforms HET sort on NVLink pairs.
        assert run(p2p_sort) < run(het_sort)

    def test_2n_and_3n_equal_in_core(self, rng):
        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)

        def run(approach):
            machine = Machine(dgx_a100(), scale=1_000_000,
                              fast_functional=True)
            return het_sort(machine, data, gpu_ids=(0, 2),
                            config=HetConfig(approach=approach)).duration

        # Section 6.1: for one chunk group the approaches coincide.
        assert run("2n") == pytest.approx(run("3n"), rel=1e-6)
