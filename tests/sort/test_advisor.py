"""Tests of the algorithm advisor."""

import numpy as np
import pytest

from repro.errors import SortError
from repro.hw import delta_d22x, dgx_a100, ibm_ac922
from repro.sort import HetConfig, P2PConfig, recommend
from repro.sort.advisor import Plan


class TestRecommendations:
    def test_dgx_in_core_prefers_single_exchange(self):
        rec = recommend(dgx_a100(), 2e9)
        # Both GPU-resident algorithms beat HET on NVSwitch; the
        # single-exchange RP sort edges out the merge-based one.
        assert rec.algorithm in ("rp", "p2p")
        assert len(rec.gpu_ids) == 8

    def test_ac922_in_core_prefers_two_nvlink_gpus(self):
        rec = recommend(ibm_ac922(), 2e9)
        assert rec.algorithm == "p2p"
        assert set(rec.gpu_ids) == {0, 1}

    def test_ac922_out_of_core_prefers_gpu_merged_het(self):
        rec = recommend(ibm_ac922(), 32e9)
        assert rec.algorithm == "het"
        assert isinstance(rec.best.config, HetConfig)
        assert rec.best.config.gpu_merge_groups

    def test_delta_finds_the_reordered_p2p_plan(self):
        rec = recommend(delta_d22x(), 2e9)
        assert rec.algorithm == "p2p"
        # The optimizer's all-NVLink order, not the paper's default.
        assert rec.gpu_ids != (0, 1, 2, 3)
        assert set(rec.gpu_ids) == {0, 1, 2, 3}

    def test_numa_local_wins_on_ac922_four_gpus(self):
        rec = recommend(ibm_ac922(), 2e9, numa_local_input=True)
        placed = [plan for plan in rec.candidates
                  if isinstance(plan.config, P2PConfig)
                  and plan.config.input_placement == "numa-local"
                  and len(plan.gpu_ids) == 4]
        default = [plan for plan in rec.candidates
                   if isinstance(plan.config, P2PConfig)
                   and plan.config.input_placement == "node0"
                   and len(plan.gpu_ids) == 4]
        assert placed and default
        assert min(p.predicted_seconds for p in placed) < \
            min(p.predicted_seconds for p in default)

    def test_best_is_minimum_of_candidates(self):
        rec = recommend(dgx_a100(), 1e9)
        assert rec.predicted_seconds == min(
            plan.predicted_seconds for plan in rec.candidates)

    def test_plan_config_round_trips(self):
        from repro.runtime import Machine
        from repro.sort import het_sort, p2p_sort, rp_sort

        rec = recommend(ibm_ac922(), 2e9)
        sorter = {"p2p": p2p_sort, "het": het_sort, "rp": rp_sort}[
            rec.algorithm]
        machine = Machine(ibm_ac922(), scale=1)
        keys = np.random.default_rng(0).integers(
            0, 1000, size=2048).astype(np.int32)
        result = sorter(machine, keys, gpu_ids=rec.gpu_ids,
                        config=rec.best.config)
        assert np.array_equal(result.output, np.sort(keys))

    def test_table_lists_all_candidates(self):
        rec = recommend(ibm_ac922(), 2e9)
        assert len(rec.table().splitlines()) == len(rec.candidates)

    def test_describe(self):
        plan = Plan("p2p", (0, 1), 0.5, None, notes="reordered")
        assert "p2p" in plan.describe()
        assert "reordered" in plan.describe()

    def test_invalid_key_count(self):
        with pytest.raises(SortError):
            recommend(dgx_a100(), 0)

    def test_small_functional_probe(self):
        # Fewer keys than the probe size: fully functional, still works.
        rec = recommend(dgx_a100(), 5000)
        assert rec.predicted_seconds > 0
