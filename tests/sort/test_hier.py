"""Tests of the hierarchical (multi-node) sort."""

import numpy as np
import pytest

from repro.cpuprims.multiway_merge import multiway_merge
from repro.data import generate
from repro.errors import SortError
from repro.faults import FaultPlan
from repro.faults.events import GpuFail
from repro.hw import dgx_a100, make_cluster
from repro.runtime import Machine
from repro.sort import HierConfig, hier_sort, p2p_sort

KEYS = 100_000


def _data(seed=42, n=KEYS):
    return generate(n, "uniform", np.int32, seed=seed)


class TestDegenerateShapes:
    def test_one_node_cluster_bit_identical_to_standalone_p2p(self):
        """Satellite: 1-node cluster == single-node platform golden."""
        data = _data()
        cluster = Machine(make_cluster("dgx-a100", 1))
        hier = hier_sort(cluster, data)
        standalone = Machine(dgx_a100())
        p2p = p2p_sort(standalone, data)
        assert hier.duration == p2p.duration
        assert hier.phase_durations == {
            name: p2p.phase_durations[name]
            for name in hier.phase_durations}
        assert np.array_equal(hier.output, p2p.output)
        assert hier.pivots == p2p.pivots
        # Identical event counts: the local phase adds nothing.
        assert cluster.env.events_retired == standalone.env.events_retired

    def test_two_node_exchange_matches_cpu_multiway_merge_oracle(self):
        """Satellite: 2-node fat-tree == a CPU multiway-merge oracle."""
        data = _data(seed=7)
        machine = Machine(make_cluster("dgx-a100", 2, fabric="fat-tree"))
        result = hier_sort(machine, data)
        # Oracle: shard exactly as the sort does, sort each shard on
        # the CPU, multiway-merge — element-identical output.
        shard = -(-len(data) // 2)
        runs = [np.sort(data[:shard]), np.sort(data[shard:])]
        oracle = multiway_merge(runs)
        assert np.array_equal(result.output, oracle)
        assert result.phase_durations["Exchange"] > 0.0
        assert result.phase_durations["NodeMerge"] > 0.0


class TestCorrectness:
    @pytest.mark.parametrize("fabric", ["fat-tree", "rail", "dragonfly"])
    def test_four_nodes_sorted_on_every_fabric(self, fabric):
        data = _data(seed=11)
        machine = Machine(make_cluster("dgx-a100", 4, fabric=fabric))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.algorithm == "hier"
        assert len(result.gpu_ids) == 32
        assert machine.net.batched_starts == 3  # one per exchange wave

    def test_duplicate_heavy_input(self):
        data = generate(KEYS, "zipf", np.int32, seed=3)
        machine = Machine(make_cluster("dgx-a100", 4))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))

    def test_other_platform_cluster(self):
        data = _data(seed=13)
        machine = Machine(make_cluster("ibm-ac922", 2))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))

    def test_non_cluster_spec_rejected(self):
        machine = Machine(dgx_a100())
        with pytest.raises(SortError, match="ClusterSpec"):
            hier_sort(machine, _data())

    def test_too_few_keys_rejected(self):
        machine = Machine(make_cluster("dgx-a100", 4))
        with pytest.raises(SortError, match="sharded"):
            hier_sort(machine, np.arange(2, dtype=np.int32))

    def test_bad_gpus_per_node_rejected(self):
        machine = Machine(make_cluster("dgx-a100", 2))
        with pytest.raises(SortError, match="power of two"):
            hier_sort(machine, _data(), config=HierConfig(gpus_per_node=3))


class TestDeterminism:
    def test_replay_is_bit_identical(self):
        """Cluster episodes replay bit-identically under a fixed seed."""
        durations, outputs = [], []
        for _ in range(2):
            machine = Machine(make_cluster("dgx-a100", 4, fabric="rail"))
            result = hier_sort(machine, _data(seed=21))
            durations.append((result.duration, machine.env.events_retired,
                              tuple(result.phase_durations.items())))
            outputs.append(result.output)
        assert durations[0] == durations[1]
        assert np.array_equal(outputs[0], outputs[1])

    def test_observability_does_not_change_timing(self):
        data = _data(seed=23)
        plain = Machine(make_cluster("dgx-a100", 2))
        off = hier_sort(plain, data)
        observed = Machine(make_cluster("dgx-a100", 2))
        observed.enable_observability()
        on = hier_sort(observed, data)
        assert on.duration == off.duration
        assert plain.env.events_retired == observed.env.events_retired

    def test_faulted_replay_is_bit_identical(self):
        plan = FaultPlan(events=(GpuFail(at=0.0, gpu=9),), seed=5)
        runs = []
        for _ in range(2):
            machine = Machine(make_cluster("dgx-a100", 2))
            machine.install_faults(plan)
            result = hier_sort(machine, _data(seed=29))
            runs.append((result.duration, result.excluded_gpus,
                         machine.env.events_retired))
        assert runs[0] == runs[1]


class TestNodeScopedRecovery:
    def test_failed_gpu_replans_only_its_node(self):
        data = _data(seed=31)
        machine = Machine(make_cluster("dgx-a100", 2))
        machine.install_faults(FaultPlan(events=(GpuFail(at=0.0, gpu=9),)))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.degraded
        assert 9 in result.excluded_gpus
        # Node 0 keeps its full 8-GPU set; node 1 drops to the largest
        # power-of-two prefix of its survivors.
        node0 = [g for g in result.gpu_ids if g < 8]
        node1 = [g for g in result.gpu_ids if g >= 8]
        assert len(node0) == 8
        assert len(node1) == 4
        assert 9 not in node1

    def test_whole_node_failure_excludes_the_node(self):
        # Every GPU of node 1 dead at planning time: the sort re-shards
        # over the survivors instead of aborting, for free (no replan
        # budget consumed — no in-flight work died).
        data = _data()
        machine = Machine(make_cluster("dgx-a100", 2))
        machine.install_faults(FaultPlan(events=tuple(
            GpuFail(at=0.0, gpu=g) for g in range(8, 16))))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.excluded_nodes == (1,)
        assert result.replans == 0
        assert all(g < 8 for g in result.gpu_ids)
        assert result.degraded

    def test_all_nodes_dead_raises(self):
        machine = Machine(make_cluster("dgx-a100", 2))
        machine.install_faults(FaultPlan(events=tuple(
            GpuFail(at=0.0, gpu=g) for g in range(16))))
        with pytest.raises(SortError, match="no cluster nodes survive"):
            hier_sort(machine, _data())
