"""Elastic recovery of the hierarchical sort under cluster faults.

The tentpole contract: a node lost mid-run triggers a node-level
replan (its shard re-sharded over the survivors, splitters recomputed,
merge ranges reassigned) that replays **only the unfinished exchange
waves** — completed matchings are durable in the wave-checkpointed
:class:`~repro.recovery.cluster.ExchangeLedger`.  Recovery is bounded
by ``max_node_replans`` and, under a deadline budget, degrades to a
typed partial result instead of an exception.
"""

import numpy as np
import pytest

from repro.data import generate
from repro.errors import DeadlineExceededError, RecoveryError, SortError
from repro.faults import FaultPlan
from repro.faults.events import GpuFail, LinkFlap, NodeDown, SwitchDown
from repro.faults.policy import ResiliencePolicy
from repro.hw import make_cluster
from repro.runtime import Machine
from repro.sort import HierConfig, hier_sort

KEYS = 60_000
SCALE = 2e9 / KEYS


def _data(seed=42, n=KEYS):
    return generate(n, "uniform", np.int32, seed=seed)


def _machine(nodes=4, fabric="fat-tree", plan=None):
    machine = Machine(make_cluster("dgx-a100", nodes, fabric=fabric),
                      scale=SCALE, fast_functional=True)
    if plan is not None:
        machine.install_faults(plan)
    return machine


def _clean_run(nodes=4, fabric="fat-tree", seed=42):
    """A fault-free reference run: its phase timings place the faults."""
    result = hier_sort(_machine(nodes, fabric), _data(seed=seed))
    return result


class TestNodeLossRecovery:
    def test_node_down_mid_exchange_recovers_element_identical(self):
        data = _data(seed=5)
        clean = _clean_run(seed=5)
        mid_exchange = clean.duration - 0.5 * (
            clean.phase_durations["Exchange"]
            + clean.phase_durations["NodeMerge"])
        machine = _machine(plan=FaultPlan(events=(
            NodeDown(at=mid_exchange, node=1),)))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.excluded_nodes == (1,)
        assert result.replans == 1
        assert result.degraded
        # The pre-death waves were checkpointed; the replan restored
        # their deliveries instead of re-exchanging them.
        assert result.checkpoints > 0
        assert result.checkpoints_restored > 0

    def test_sixteen_node_node_down_plus_switch_down(self):
        """Acceptance scenario: one NodeDown mid-Exchange plus one
        SwitchDown on a 16-node fat-tree; completes element-identical
        replaying only unfinished waves."""
        data = _data(seed=9)
        clean = _clean_run(nodes=16, seed=9)
        mid_exchange = clean.duration - 0.5 * (
            clean.phase_durations["Exchange"]
            + clean.phase_durations["NodeMerge"])
        machine = _machine(nodes=16, plan=FaultPlan(events=(
            NodeDown(at=mid_exchange, node=3),
            SwitchDown(at=0.4 * clean.duration, switch="ft_spine0",
                       duration=0.2 * clean.duration),)))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.excluded_nodes == (3,)
        assert result.replans == 1
        assert result.checkpoints_restored > 0
        # Durable deliveries survive the replan: far fewer waves were
        # replayed than the full matching schedule would cost.
        assert result.waves_replayed < result.checkpoints

    def test_replans_exhausted_is_a_typed_recovery_error(self):
        clean = _clean_run()
        machine = _machine(plan=FaultPlan(events=(
            NodeDown(at=0.5 * clean.duration, node=2),)))
        with pytest.raises(RecoveryError, match="0 node replans"):
            hier_sort(machine, _data(),
                      config=HierConfig(max_node_replans=0))

    def test_failure_context_attached_to_the_error(self):
        clean = _clean_run()
        machine = _machine(plan=FaultPlan(events=(
            NodeDown(at=0.5 * clean.duration, node=2),)))
        try:
            hier_sort(machine, _data(),
                      config=HierConfig(max_node_replans=0))
        except SortError as exc:
            assert exc.failing_phase
            assert exc.failing_phase_started is not None
        else:
            pytest.fail("expected a SortError")

    def test_faulted_recovery_replay_is_bit_identical(self):
        clean = _clean_run(seed=17)
        plan = FaultPlan(events=(
            NodeDown(at=0.6 * clean.duration, node=1),), seed=7)
        runs = []
        for _ in range(2):
            machine = _machine(plan=plan)
            result = hier_sort(machine, _data(seed=17))
            runs.append((result.duration, result.excluded_nodes,
                         result.waves_replayed,
                         machine.env.events_retired))
        assert runs[0] == runs[1]


class TestWaveReplay:
    def test_transient_exchange_failure_replays_the_wave(self):
        # A brief leaf outage mid-exchange on a 4-node fat-tree (no
        # redundant spine) aborts in-flight wave transfers; the wave
        # replays after the window and the sort stays element-identical.
        data = _data(seed=23)
        clean = _clean_run(seed=23)
        mid_exchange = clean.duration - 0.5 * (
            clean.phase_durations["Exchange"]
            + clean.phase_durations["NodeMerge"])
        machine = _machine(plan=FaultPlan(events=(
            SwitchDown(at=mid_exchange, switch="ft_leaf0",
                       duration=0.02 * clean.duration),)))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.excluded_nodes == ()
        assert result.replans == 0

    def test_flapping_nic_does_not_break_the_sort(self):
        data = _data(seed=29)
        clean = _clean_run(seed=29)
        link = make_cluster("dgx-a100", 4).node_nic_links(1)[0]
        machine = _machine(plan=FaultPlan(events=(
            LinkFlap(at=0.3 * clean.duration, resource=link, cycles=3,
                     down_s=0.03 * clean.duration,
                     up_s=0.05 * clean.duration),)))
        result = hier_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))


class TestDeadlineBudget:
    def test_deadline_yields_typed_partial_result(self):
        clean = _clean_run()
        machine = _machine(plan=FaultPlan(events=(
            NodeDown(at=0.5 * clean.duration, node=1),)))
        result = hier_sort(machine, _data(), config=HierConfig(
            deadline_s=0.6 * clean.duration))
        assert result.deadline_exceeded
        assert result.output is None
        assert result.degraded

    def test_generous_deadline_changes_nothing(self):
        data = _data(seed=31)
        clean = _clean_run(seed=31)
        result = hier_sort(_machine(), data, config=HierConfig(
            deadline_s=10.0 * clean.duration))
        assert not result.deadline_exceeded
        assert np.array_equal(result.output, np.sort(data))
        assert result.duration == clean.duration


class TestResilienceOverrideScope:
    """Satellite: a per-call policy override never leaks onto the
    machine — success and error paths both restore it."""

    def test_override_restored_after_success(self):
        machine = _machine()
        original = machine.resilience
        custom = ResiliencePolicy(max_retries=9)
        result = hier_sort(machine, _data(), resilience=custom)
        assert result.output is not None
        assert machine.resilience is original

    def test_override_restored_after_failure(self):
        machine = _machine(nodes=2, plan=FaultPlan(events=tuple(
            GpuFail(at=0.0, gpu=g) for g in range(16))))
        original = machine.resilience
        with pytest.raises(SortError):
            hier_sort(machine, _data(),
                      resilience=ResiliencePolicy(max_retries=9))
        assert machine.resilience is original
