"""Unit tests of GPU set selection and ordering (Section 5.4)."""

import pytest

from repro.errors import SortError
from repro.hw import delta_d22x, dgx_a100, ibm_ac922
from repro.sort.gpu_set import (
    best_gpu_order_for_p2p,
    best_gpu_set,
    p2p_order_cost,
    preferred_gpu_ids,
    rank_gpu_sets,
)


class TestPreferredIds:
    def test_paper_choices(self):
        assert preferred_gpu_ids(ibm_ac922(), 2) == (0, 1)
        assert preferred_gpu_ids(dgx_a100(), 2) == (0, 2)
        assert preferred_gpu_ids(dgx_a100(), 4) == (0, 2, 4, 6)


class TestOrderCost:
    def test_ac922_paper_order_beats_interleaved(self):
        spec = ibm_ac922()
        assert p2p_order_cost(spec, (0, 1, 2, 3)) < \
            p2p_order_cost(spec, (0, 2, 1, 3))

    def test_dgx_orders_tie(self):
        spec = dgx_a100()
        assert p2p_order_cost(spec, (0, 1, 2, 3)) == pytest.approx(
            p2p_order_cost(spec, (0, 3, 1, 2)))

    def test_rejects_bad_length(self):
        with pytest.raises(SortError):
            p2p_order_cost(ibm_ac922(), (0, 1, 2))


class TestBestOrder:
    def test_ac922_keeps_paper_order(self):
        order = best_gpu_order_for_p2p(ibm_ac922(), (0, 1, 2, 3))
        # Pairwise stages must couple the NVLink pairs {0,1} and {2,3}.
        pairs = {frozenset(order[0:2]), frozenset(order[2:4])}
        assert pairs == {frozenset({0, 1}), frozenset({2, 3})}

    def test_delta_finds_all_nvlink_order(self):
        # The DELTA's link set (0-1, 0-2, 2-3, 1-3) admits an order
        # whose global stage also runs over NVLink — the paper's
        # default (0, 1, 2, 3) sends it through the host instead.
        spec = delta_d22x()
        order = best_gpu_order_for_p2p(spec, (0, 1, 2, 3))
        assert p2p_order_cost(spec, order) < \
            p2p_order_cost(spec, (0, 1, 2, 3))
        half = len(order) // 2
        global_pairs = [(order[half - 1], order[half]),
                        (order[0], order[-1])]
        for a, b in global_pairs:
            assert spec.topology.has_direct_p2p(f"gpu{a}", f"gpu{b}")

    def test_single_gpu_passthrough(self):
        assert best_gpu_order_for_p2p(ibm_ac922(), (2,)) == (2,)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SortError):
            best_gpu_order_for_p2p(ibm_ac922(), (0, 1, 2))


class TestRankSets:
    def test_dgx_prefers_distinct_switches(self):
        ranked = rank_gpu_sets(dgx_a100(), 2)
        best_set = ranked[0][0]
        # The best pair must not share a PCIe switch (pairs (2k, 2k+1)).
        assert best_set[0] // 2 != best_set[1] // 2

    def test_count_bounds(self):
        with pytest.raises(SortError):
            rank_gpu_sets(ibm_ac922(), 0)
        with pytest.raises(SortError):
            rank_gpu_sets(ibm_ac922(), 5)

    def test_best_set_orders_when_requested(self):
        chosen = best_gpu_set(delta_d22x(), 4, order_for_p2p=True)
        assert sorted(chosen) == [0, 1, 2, 3]


class TestEndToEndOrderEffect:
    def test_delta_optimized_order_sorts_faster(self, rng):
        import numpy as np

        from repro.runtime import Machine
        from repro.sort import p2p_sort

        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)
        spec = delta_d22x()
        optimized = best_gpu_order_for_p2p(spec, (0, 1, 2, 3))

        def run(order):
            machine = Machine(delta_d22x(), scale=2_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=order)

        default = run((0, 1, 2, 3))
        better = run(optimized)
        assert np.array_equal(better.output, default.output)
        assert better.duration < default.duration
