"""Key-value (payload) sorting across all three multi-GPU algorithms.

Validation scheme: payloads are the original positions, so the output
is checked by (a) sortedness of the keys, (b) ``keys[positions] ==
output`` — every payload still sits next to its own key even under
heavy duplication — and (c) the positions being a permutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpuprims import multiway_merge_with_values
from repro.errors import SortError
from repro.gpuprims import merge_sorted_with_values
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import HetConfig, P2PConfig, het_sort, p2p_sort, rp_sort


def check_kv(keys: np.ndarray, result) -> None:
    out = result.output.astype(np.int64)
    assert np.all(out[:-1] <= out[1:]) if out.size > 1 else True
    assert np.array_equal(keys[result.output_values], result.output)
    assert np.array_equal(np.sort(result.output_values),
                          np.arange(len(keys)))


def kv_workload(rng, n, lo=0, hi=50):
    keys = rng.integers(lo, hi, size=n).astype(np.int32)
    values = np.arange(n, dtype=np.int64)
    return keys, values


class TestPrimitives:
    def test_merge_sorted_with_values(self, rng):
        a = np.sort(rng.integers(0, 100, size=200).astype(np.int32))
        b = np.sort(rng.integers(0, 100, size=150).astype(np.int32))
        va = np.arange(200, dtype=np.int64)
        vb = np.arange(200, 350, dtype=np.int64)
        keys, values = merge_sorted_with_values(a, b, va, vb)
        everything = np.concatenate([a, b])
        assert np.array_equal(keys, np.sort(everything))
        # Each (key, value) output pair existed in the input.
        pairs_in = set(zip(everything.tolist(),
                           np.concatenate([va, vb]).tolist()))
        pairs_out = set(zip(keys.tolist(), values.tolist()))
        assert pairs_out == pairs_in

    def test_merge_values_length_mismatch(self):
        with pytest.raises(SortError):
            merge_sorted_with_values(np.zeros(2, np.int32),
                                     np.zeros(2, np.int32),
                                     np.zeros(1, np.int64),
                                     np.zeros(2, np.int64))

    def test_multiway_merge_with_values(self, rng):
        runs, value_runs, pairs = [], [], set()
        offset = 0
        for _ in range(5):
            size = int(rng.integers(0, 120))
            keys = np.sort(rng.integers(0, 30, size=size).astype(np.int32))
            values = np.arange(offset, offset + size, dtype=np.int64)
            offset += size
            runs.append(keys)
            value_runs.append(values)
            pairs |= set(zip(keys.tolist(), values.tolist()))
        keys, values = multiway_merge_with_values(runs, value_runs)
        assert np.all(np.diff(keys.astype(np.int64)) >= 0)
        assert set(zip(keys.tolist(), values.tolist())) == pairs

    def test_multiway_merge_values_validation(self):
        with pytest.raises(SortError):
            multiway_merge_with_values([np.zeros(2, np.int32)], [])
        with pytest.raises(SortError):
            multiway_merge_with_values([np.zeros(2, np.int32)],
                                       [np.zeros(3, np.int64)])


class TestP2PKeyValue:
    @pytest.mark.parametrize("gpu_ids", [(0, 1), (0, 1, 2, 3)])
    def test_values_follow_keys(self, ac922, gpu_ids, rng):
        keys, values = kv_workload(rng, 4096)
        result = p2p_sort(ac922, keys, values=values, gpu_ids=gpu_ids)
        check_kv(keys, result)

    def test_padded_sizes(self, ac922, rng):
        for n in (1001, 4095, 7):
            keys, values = kv_workload(rng, n)
            result = p2p_sort(ac922, keys, values=values,
                              gpu_ids=(0, 1, 2, 3))
            check_kv(keys, result)

    def test_max_key_duplicates_survive_padding(self, ac922):
        # The maximal key appears many times and n is not divisible by
        # g: padding must not steal or invent payloads.
        keys = np.array([5, 9, 9, 9, 1, 9, 3], dtype=np.int32)
        values = np.arange(7, dtype=np.int64)
        result = p2p_sort(ac922, keys, values=values, gpu_ids=(0, 1))
        check_kv(keys, result)

    def test_serialized_swap_with_values(self, ac922, rng):
        keys, values = kv_workload(rng, 2048)
        result = p2p_sort(ac922, keys, values=values, gpu_ids=(0, 1),
                          config=P2PConfig(out_of_place_swap=False))
        check_kv(keys, result)

    def test_multihop_with_values(self, delta, rng):
        keys, values = kv_workload(rng, 2048)
        result = p2p_sort(delta, keys, values=values,
                          gpu_ids=(0, 1, 2, 3),
                          config=P2PConfig(multihop=True))
        check_kv(keys, result)

    def test_value_length_mismatch_rejected(self, ac922):
        with pytest.raises(SortError, match="values"):
            p2p_sort(ac922, np.arange(8, dtype=np.int32),
                     values=np.arange(7), gpu_ids=(0, 1))

    def test_payload_slows_sort_by_byte_ratio(self, rng):
        keys = rng.integers(0, 1 << 30, size=50_000).astype(np.int32)
        values = np.arange(50_000, dtype=np.int64)
        scale = 2e9 / keys.size

        def run(with_values):
            machine = Machine(dgx_a100(), scale=scale,
                              fast_functional=True)
            return p2p_sort(machine, keys,
                            values=values if with_values else None).duration

        ratio = run(True) / run(False)
        # int32 keys + int64 payloads = 3x the bytes everywhere.
        assert 2.5 < ratio < 3.3


class TestHetKeyValue:
    def test_in_core(self, dgx, rng):
        keys, values = kv_workload(rng, 3000)
        result = het_sort(dgx, keys, values=values, gpu_ids=(0, 2, 4))
        check_kv(keys, result)

    def test_single_gpu(self, dgx, rng):
        keys, values = kv_workload(rng, 1500)
        result = het_sort(dgx, keys, values=values, gpu_ids=(0,))
        check_kv(keys, result)

    @pytest.mark.parametrize("approach", ["2n", "3n"])
    @pytest.mark.parametrize("eager", [False, True])
    def test_out_of_core(self, approach, eager, rng):
        machine = Machine(ibm_ac922(), scale=3_000_000)
        keys, values = kv_workload(rng, 50_000, hi=1 << 30)
        result = het_sort(machine, keys, values=values,
                          gpu_ids=(0, 1, 2, 3),
                          config=HetConfig(approach=approach,
                                           eager_merge=eager))
        assert result.chunk_groups > 1
        check_kv(keys, result)

    def test_value_length_mismatch_rejected(self, dgx):
        with pytest.raises(SortError, match="values"):
            het_sort(dgx, np.arange(8, dtype=np.int32),
                     values=np.arange(9))


class TestRPKeyValue:
    def test_values_follow_keys(self, dgx, rng):
        keys, values = kv_workload(rng, 4001)
        result = rp_sort(dgx, keys, values=values)
        check_kv(keys, result)

    def test_float_keys_int_values(self, dgx, rng):
        keys = rng.normal(size=2000).astype(np.float32)
        values = np.arange(2000, dtype=np.int64)
        result = rp_sort(dgx, keys, values=values, gpu_ids=(0, 2, 4))
        assert np.array_equal(keys[result.output_values], result.output)

    def test_exchange_volume_includes_payload(self, rng):
        keys = rng.integers(0, 1 << 30, size=40_000).astype(np.int32)
        values = np.arange(40_000, dtype=np.int64)
        machine = Machine(dgx_a100(), scale=1000, fast_functional=False)
        with_payload = rp_sort(machine, keys, values=values)
        machine2 = Machine(dgx_a100(), scale=1000, fast_functional=False)
        without = rp_sort(machine2, keys)
        assert with_payload.p2p_bytes == pytest.approx(
            3.0 * without.p2p_bytes, rel=0.01)


class TestCrossAlgorithmAgreement:
    @given(st.lists(st.integers(-30, 30), min_size=1, max_size=200))
    @settings(max_examples=15, deadline=None)
    def test_all_algorithms_agree(self, raw_keys):
        keys = np.array(raw_keys, dtype=np.int32)
        values = np.arange(keys.size, dtype=np.int64)
        outputs = []
        for sorter, kwargs in [
            (p2p_sort, {"gpu_ids": (0, 2)}),
            (het_sort, {"gpu_ids": (0, 2)}),
            (rp_sort, {"gpu_ids": (0, 2)}),
        ]:
            machine = Machine(dgx_a100(), scale=1)
            result = sorter(machine, keys, values=values, **kwargs)
            check_kv(keys, result)
            outputs.append(result.output)
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[1], outputs[2])
