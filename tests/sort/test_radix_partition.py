"""Unit and integration tests of the partition-based RP sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.errors import SortError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import RPConfig, p2p_sort, rp_sort


class TestCorrectness:
    @pytest.mark.parametrize("distribution", [
        "uniform", "normal", "sorted", "reverse-sorted", "nearly-sorted"])
    def test_all_distributions(self, dgx, distribution):
        data = generate(4096, distribution, np.int32, seed=4)
        result = rp_sort(dgx, data)
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32,
                                       np.float64])
    def test_dtypes(self, dgx, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = rng.normal(size=2048).astype(dtype)
        else:
            data = rng.integers(-5000, 5000, size=2048).astype(dtype)
        result = rp_sort(dgx, data)
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("gpu_ids", [(0,), (0, 2), (0, 2, 4),
                                         (0, 1, 2, 3, 4), tuple(range(8))])
    def test_any_gpu_count(self, dgx, gpu_ids, rng):
        # RP sort is not limited to powers of two.
        data = rng.integers(0, 1 << 30, size=3001).astype(np.int32)
        result = rp_sort(dgx, data, gpu_ids=gpu_ids)
        assert np.array_equal(result.output, np.sort(data))

    def test_tiny_input(self, dgx):
        data = np.array([9, 1, 5], dtype=np.int32)
        result = rp_sort(dgx, data, gpu_ids=(0, 1, 2, 3))
        assert list(result.output) == [1, 5, 9]

    def test_duplicate_heavy(self, dgx, rng):
        data = rng.integers(0, 4, size=4096).astype(np.int32)
        result = rp_sort(dgx, data, config=RPConfig(slack=2.5))
        assert np.array_equal(result.output, np.sort(data))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_property_sorted(self, values):
        machine = Machine(dgx_a100(), scale=1)
        data = np.array(values, dtype=np.int32)
        result = rp_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                         config=RPConfig(slack=4.0))
        assert np.array_equal(result.output, np.sort(data))


class TestValidation:
    def test_empty_rejected(self, dgx):
        with pytest.raises(SortError):
            rp_sort(dgx, np.empty(0, np.int32))

    def test_duplicate_ids_rejected(self, dgx):
        with pytest.raises(SortError, match="duplicate"):
            rp_sort(dgx, np.arange(8, dtype=np.int32), gpu_ids=(0, 0))

    def test_bad_config_rejected(self, dgx):
        with pytest.raises(SortError):
            rp_sort(dgx, np.arange(8, dtype=np.int32),
                    config=RPConfig(slack=0.5))
        with pytest.raises(SortError):
            rp_sort(dgx, np.arange(8, dtype=np.int32),
                    config=RPConfig(oversample=0))

    def test_imbalance_detected(self, dgx, monkeypatch):
        # Degenerate splitters funnel everything into one bucket: the
        # overflow must fail loudly rather than corrupt the receive
        # buffers.  (Real splitters spread ties by sample rank, so this
        # needs sabotage to trigger.)
        import repro.sort.radix_partition as rp

        monkeypatch.setattr(
            rp, "_splitters",
            lambda samples, parts: (np.zeros(parts - 1, samples.dtype),
                                    {}))
        data = np.arange(1, 4097, dtype=np.int32)
        with pytest.raises(SortError, match="imbalance"):
            rp.rp_sort(dgx, data, gpu_ids=(0, 1, 2, 3),
                       config=RPConfig(slack=1.05))

    def test_ties_spread_keeps_balance(self, dgx):
        # All-equal keys would previously overflow one bucket; the
        # rank-based tie split keeps even degenerate inputs balanced
        # under the default slack.
        data = np.zeros(4096, dtype=np.int32)
        result = rp_sort(dgx, data, gpu_ids=(0, 1, 2, 3))
        assert np.array_equal(result.output, data)

    def test_zipf_skew_balanced_by_default(self, dgx):
        from repro.data import generate

        data = generate(20_000, "zipf", np.int32, seed=1)
        result = rp_sort(dgx, data)
        assert np.array_equal(result.output, np.sort(data))

    def test_oversized_data_rejected(self):
        machine = Machine(dgx_a100(), scale=1e9, fast_functional=True)
        with pytest.raises(SortError, match="RP sort needs"):
            rp_sort(machine, np.zeros(200_000, np.int32))


class TestResultMetadata:
    def test_phases(self, dgx, rng):
        data = rng.integers(0, 1000, size=2048).astype(np.int32)
        result = rp_sort(dgx, data)
        assert set(result.phase_durations) == {
            "HtoD", "Partition", "Exchange", "Sort", "DtoH"}
        assert result.algorithm == "rp"
        assert result.merge_stages == 1

    def test_exchange_volume_bounded(self, rng):
        # Expected cross-GPU volume is ~ n * (g-1)/g.
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        data = rng.integers(0, 1 << 30, size=80_000).astype(np.int32)
        result = rp_sort(machine, data)
        expected = data.nbytes * 1000 * 7 / 8
        assert 0.8 * expected < result.p2p_bytes < 1.2 * expected


class TestPaperHypothesis:
    def test_rp_moves_less_data_than_p2p_sort(self, rng):
        data = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        scale = 2e9 / data.size
        rp = rp_sort(Machine(dgx_a100(), scale=scale,
                             fast_functional=True), data)
        pp = p2p_sort(Machine(dgx_a100(), scale=scale,
                              fast_functional=True), data)
        # Section 7: keys cross the interconnect only once.
        assert rp.p2p_bytes < 0.5 * pp.p2p_bytes

    def test_rp_beats_p2p_sort_on_nvswitch(self, rng):
        data = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        scale = 2e9 / data.size
        rp = rp_sort(Machine(dgx_a100(), scale=scale,
                             fast_functional=True), data)
        pp = p2p_sort(Machine(dgx_a100(), scale=scale,
                              fast_functional=True), data)
        assert rp.duration < pp.duration

    def test_rp_does_not_beat_p2p_on_xbus_topology(self, rng):
        # Without all-to-all links the single exchange still crosses
        # the X-Bus, so RP sort loses its edge.
        data = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        scale = 2e9 / data.size
        rp = rp_sort(Machine(ibm_ac922(), scale=scale,
                             fast_functional=True), data,
                     gpu_ids=(0, 1, 2, 3))
        pp = p2p_sort(Machine(ibm_ac922(), scale=scale,
                              fast_functional=True), data,
                      gpu_ids=(0, 1, 2, 3))
        assert rp.duration > 0.9 * pp.duration
