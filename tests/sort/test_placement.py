"""Unit tests of the NUMA placement helpers."""

import numpy as np
import pytest

from repro.hw import ibm_ac922
from repro.runtime import Machine
from repro.sort import placement as pl


@pytest.fixture
def host_in(ac922, rng):
    return ac922.host_buffer(
        rng.integers(0, 100, size=400).astype(np.int32))


class TestPlaceChunks:
    def test_node0_placement_shares_the_input(self, ac922, host_in):
        chunks = pl.place_chunks(ac922, host_in, (0, 1, 2, 3),
                                 [(i * 100, (i + 1) * 100)
                                  for i in range(4)],
                                 placement=pl.NODE0)
        for chunk in chunks:
            assert chunk.staging.numa == host_in.numa
            # A view, not a copy: writes show through.
            assert chunk.staging.data.base is host_in.data

    def test_numa_local_placement_follows_the_gpus(self, ac922, host_in):
        chunks = pl.place_chunks(ac922, host_in, (0, 1, 2, 3),
                                 [(i * 100, (i + 1) * 100)
                                  for i in range(4)],
                                 placement=pl.NUMA_LOCAL)
        assert [c.staging.numa for c in chunks] == [0, 0, 1, 1]
        for i, chunk in enumerate(chunks):
            assert np.array_equal(chunk.staging.data,
                                  host_in.data[i * 100:(i + 1) * 100])


class TestRedistribute:
    def test_only_off_node_chunks_cost_time(self, ac922, host_in):
        chunks = pl.place_chunks(ac922, host_in, (0, 1, 2, 3),
                                 [(i * 100, (i + 1) * 100)
                                  for i in range(4)],
                                 placement=pl.NUMA_LOCAL)
        machine = Machine(ibm_ac922(), scale=10_000_000,
                          fast_functional=True)
        remade = pl.place_chunks(machine,
                                 machine.host_buffer(host_in.data.copy()),
                                 (0, 1, 2, 3),
                                 [(i * 100, (i + 1) * 100)
                                  for i in range(4)],
                                 placement=pl.NUMA_LOCAL)

        def run():
            yield from pl.redistribute(
                machine, machine.host_buffer(host_in.data.copy()), remade)

        machine.run(run())
        # 2 off-node chunks of 100 keys x 4 B x 1e7 scale = 4 GB each
        # over the X-Bus: 41 GB/s with the two-flow sharing factor 0.95.
        assert machine.now == pytest.approx(8e9 / (41e9 * 0.95),
                                            rel=0.02)
        assert len(chunks) == 4

    def test_all_local_is_free(self, ac922, host_in):
        chunks = pl.place_chunks(ac922, host_in, (0, 1),
                                 [(0, 200), (200, 400)],
                                 placement=pl.NUMA_LOCAL)
        ac922.run(pl.redistribute(ac922, host_in, chunks))
        assert ac922.now == 0.0


class TestOutputBuffers:
    def test_local_outputs_land_on_gpu_nodes(self, ac922):
        buffer = pl.output_buffer_for(ac922, gpu_id=3, size=10,
                                      dtype=np.int32,
                                      placement=pl.NUMA_LOCAL,
                                      default_numa=0)
        assert buffer.numa == 1

    def test_node0_outputs_use_the_default(self, ac922):
        buffer = pl.output_buffer_for(ac922, gpu_id=3, size=10,
                                      dtype=np.int32,
                                      placement=pl.NODE0, default_numa=0)
        assert buffer.numa == 0


class TestPivotHistory:
    def test_sorted_input_records_zero_pivots(self, ac922):
        from repro.sort import p2p_sort

        result = p2p_sort(ac922, np.arange(1024, dtype=np.int32),
                          gpu_ids=(0, 1, 2, 3))
        assert len(result.pivots) == 5  # T(4) pivot selections
        assert all(p == 0 for p in result.pivots)
        assert result.p2p_bytes == 0.0

    def test_reversed_input_records_full_pivots(self, ac922):
        from repro.sort import p2p_sort

        data = np.arange(1024, dtype=np.int32)[::-1].copy()
        result = p2p_sort(ac922, data, gpu_ids=(0, 1))
        assert result.pivots == (512,)
