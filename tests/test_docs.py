"""The documentation's code examples must actually run."""

import pathlib
import re

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_executes(self):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = python_blocks(readme)
        assert blocks, "README lost its quickstart example"
        namespace = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)
        result = namespace["result"]
        assert np.array_equal(result.output, np.sort(namespace["keys"]))

    def test_readme_mentions_all_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for doc in ("EXPERIMENTS.md", "DESIGN.md", "docs/ARCHITECTURE.md",
                    "docs/CALIBRATION.md"):
            assert doc in readme
            assert (REPO_ROOT / doc).exists()


class TestPackageDocstring:
    def test_module_example_executes(self):
        import repro

        match = re.search(r"Quickstart::\n\n((?:    .*\n)+)",
                          repro.__doc__)
        assert match, "package docstring lost its example"
        code = "\n".join(line[4:] for line in
                         match.group(1).splitlines())
        namespace = {}
        exec(compile(code, "repro/__init__.py", "exec"), namespace)

    def test_every_public_module_has_a_docstring(self):
        import importlib

        for name in ("repro.sim.engine", "repro.sim.flows",
                     "repro.hw.topology", "repro.hw.systems",
                     "repro.runtime.memcpy", "repro.runtime.multihop",
                     "repro.gpuprims.radix_lsb", "repro.cpuprims.paradis",
                     "repro.sort.p2p", "repro.sort.het",
                     "repro.sort.radix_partition", "repro.sort.pivot",
                     "repro.bench.harness", "repro.analysis.timeline"):
            module = importlib.import_module(name)
            assert module.__doc__ and len(module.__doc__) > 40, name


class TestDesignIndex:
    def test_every_indexed_bench_file_exists(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for path in re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`",
                               design):
            assert (REPO_ROOT / path).exists(), path

    def test_experiments_md_is_current_format(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for marker in ("Table 2", "Figure 14", "Figure 15a",
                       "Extension: single-exchange RP sort",
                       "Extension: NUMA-aware input placement"):
            assert marker in experiments, marker


class TestBenchmarkCoverage:
    def test_one_bench_file_per_registered_experiment_family(self):
        bench_dir = REPO_ROOT / "benchmarks"
        names = {p.name for p in bench_dir.glob("bench_*.py")}
        for required in ("bench_table2_single_gpu.py",
                         "bench_fig1_headline.py",
                         "bench_fig12_ac922_sort.py",
                         "bench_fig15a_large_data.py",
                         "bench_fig16_distributions.py",
                         "bench_ablations.py",
                         "bench_ext_rp_sort.py",
                         "bench_ext_multihop.py",
                         "bench_ext_key_value.py",
                         "bench_ext_numa_gpu_merge.py",
                         "bench_ext_co_running.py"):
            assert required in names, required
