"""Integration tests: the paper's qualitative and quantitative shapes.

These are the reproduction acceptance tests: every published number we
target must be within tolerance, every ordering/crossover claim must
hold.  Tolerances are generous (the substrate is a calibrated model,
not the authors' testbed) but the *shapes* are asserted strictly.
"""

import pytest

from repro.analysis import shape_error, speedup
from repro.bench.experiments.sort_scaling import (
    PAPER_FIG1,
    PAPER_TOTALS_2B,
    cpu_sort_duration,
    sort_duration,
    sort_run,
)
from repro.bench.transfers import (
    bidir,
    dtoh,
    htod,
    measure_throughput,
    p2p,
    p2p_bidir,
)
from repro.hw import delta_d22x, dgx_a100, ibm_ac922

#: Worst acceptable multiplicative deviation from a paper number.
TOLERANCE = 1.25


class TestInterconnectFigures:
    @pytest.mark.parametrize("transfers,expected", [
        ([htod(0)], 72.0), ([dtoh(0)], 72.0),
        ([htod(2)], 41.0), ([dtoh(2)], 35.0),
        ([htod(0), htod(1)], 141.0),
        ([dtoh(0), dtoh(1)], 109.0),
        (bidir(0) + bidir(1), 136.0),
        ([htod(2), htod(3)], 39.0),
        ([htod(i) for i in range(4)], 74.0),
    ])
    def test_figure2_ac922_cpu_gpu(self, transfers, expected):
        measured = measure_throughput(ibm_ac922, transfers)
        assert shape_error([measured], [expected]) < TOLERANCE

    @pytest.mark.parametrize("transfers,expected", [
        ([htod(0)], 12.0), ([dtoh(0)], 13.0), (bidir(0), 20.0),
        ([htod(i) for i in range(4)], 49.0),
        ([t for i in range(4) for t in bidir(i)], 79.0),
    ])
    def test_figure3_delta_cpu_gpu(self, transfers, expected):
        measured = measure_throughput(delta_d22x, transfers)
        assert shape_error([measured], [expected]) < TOLERANCE

    @pytest.mark.parametrize("transfers,expected", [
        ([htod(0)], 24.0), (bidir(0), 39.0),
        ([htod(0), htod(1)], 25.0),          # shared PCIe switch
        ([htod(0), htod(2)], 49.0),          # distinct switches
        ([htod(i) for i in (0, 2, 4, 6)], 87.0),
        ([htod(i) for i in range(8)], 89.0),
        ([dtoh(i) for i in range(8)], 104.0),
    ])
    def test_figure4_dgx_cpu_gpu(self, transfers, expected):
        measured = measure_throughput(dgx_a100, transfers)
        assert shape_error([measured], [expected]) < TOLERANCE

    @pytest.mark.parametrize("builder,transfers,expected", [
        (ibm_ac922, [p2p(0, 1)], 72.0),
        (ibm_ac922, [p2p(0, 2)], 32.0),
        (ibm_ac922, p2p_bidir(0, 1), 145.0),
        (ibm_ac922, p2p_bidir(0, 3) + p2p_bidir(1, 2), 53.0),
        (delta_d22x, [p2p(0, 1)], 48.0),
        (delta_d22x, [p2p(0, 3)], 9.0),
        (delta_d22x, p2p_bidir(0, 1), 97.0),
        (dgx_a100, [p2p(0, 1)], 279.0),
        (dgx_a100, p2p_bidir(0, 1), 530.0),
        (dgx_a100, p2p_bidir(0, 7) + p2p_bidir(1, 6) + p2p_bidir(2, 5)
         + p2p_bidir(3, 4), 2116.0),
    ])
    def test_figures_5_to_7_p2p(self, builder, transfers, expected):
        measured = measure_throughput(builder, transfers)
        assert shape_error([measured], [expected]) < TOLERANCE

    def test_headline_nvswitch_factors(self):
        """Abstract: 35.3x over PCIe 3.0, 5.5x over NVLink 2.0 (4/2 GPUs)."""
        dgx_pair = measure_throughput(dgx_a100, p2p_bidir(0, 1))
        nvlink_pair = measure_throughput(ibm_ac922, p2p_bidir(0, 1))
        assert 2.5 < dgx_pair / nvlink_pair < 5.5 * TOLERANCE

        dgx_quad = measure_throughput(
            dgx_a100, p2p_bidir(0, 3) + p2p_bidir(1, 2))
        delta_quad = measure_throughput(
            delta_d22x, p2p_bidir(0, 3) + p2p_bidir(1, 2))
        assert 20.0 < dgx_quad / delta_quad < 35.3 * TOLERANCE


class TestSortScalingFigures:
    @pytest.mark.parametrize("system,algorithm", sorted(PAPER_TOTALS_2B))
    def test_figures_12_to_14_totals(self, system, algorithm):
        reference = PAPER_TOTALS_2B[(system, algorithm)]
        measured = [sort_duration(system, algorithm, gpus, 2.0)
                    for gpus in sorted(reference)]
        expected = [reference[gpus] for gpus in sorted(reference)]
        assert shape_error(measured, expected) < TOLERANCE

    def test_figure1_dgx_16gb(self):
        measured = [
            cpu_sort_duration("dgx-a100", 4.0, primitive="paradis"),
            sort_duration("dgx-a100", "het", 1, 4.0),
            sort_duration("dgx-a100", "p2p", 2, 4.0),
            sort_duration("dgx-a100", "p2p", 4, 4.0),
            sort_duration("dgx-a100", "het", 2, 4.0),
            sort_duration("dgx-a100", "het", 4, 4.0),
        ]
        expected = [PAPER_FIG1[key] for key in (
            "PARADIS (CPU)", "Thrust (1 GPU)", "P2P sort (2 GPUs)",
            "P2P sort (4 GPUs)", "HET sort (2 GPUs)", "HET sort (4 GPUs)")]
        assert shape_error(measured, expected) < TOLERANCE

    def test_linear_scaling_with_data_size(self):
        small = sort_duration("dgx-a100", "p2p", 4, 2.0)
        large = sort_duration("dgx-a100", "p2p", 4, 8.0)
        assert large / small == pytest.approx(4.0, rel=0.1)

    def test_p2p_beats_het_on_nvlink_systems(self):
        for system, gpus in (("ibm-ac922", 2), ("dgx-a100", 2),
                             ("dgx-a100", 8)):
            p2p_time = sort_duration(system, "p2p", gpus, 2.0)
            het_time = sort_duration(system, "het", gpus, 2.0)
            assert p2p_time < het_time, (system, gpus)

    def test_p2p_and_het_tie_without_p2p_interconnects(self):
        # Section 6.1.2: on four DELTA GPUs both algorithms coincide.
        p2p_time = sort_duration("delta-d22x", "p2p", 4, 2.0)
        het_time = sort_duration("delta-d22x", "het", 4, 2.0)
        assert shape_error([p2p_time], [het_time]) < 1.2

    def test_p2p_over_het_factor_on_dgx(self):
        # Abstract / Section 6.1.4: up to 1.65x on the DGX A100.
        factors = [sort_duration("dgx-a100", "het", g, 2.0)
                   / sort_duration("dgx-a100", "p2p", g, 2.0)
                   for g in (2, 4, 8)]
        assert max(factors) == pytest.approx(1.65, rel=0.2)

    def test_speedups_over_paradis(self):
        # Abstract: up to 14x for P2P sort and 9x for HET sort.
        ac922_best = sort_duration("ibm-ac922", "p2p", 2, 2.0)
        ac922_cpu = cpu_sort_duration("ibm-ac922", 2.0)
        assert speedup(ac922_cpu, ac922_best) == pytest.approx(14.0,
                                                               rel=0.25)
        het_best = sort_duration("ibm-ac922", "het", 2, 2.0)
        assert speedup(ac922_cpu, het_best) == pytest.approx(9.5, rel=0.25)

    def test_ac922_two_gpus_match_dgx_eight(self):
        # Section 6.1.4: the AC922 with two GPUs reaches the sort time
        # of the DGX A100 with eight.
        ac922 = sort_duration("ibm-ac922", "p2p", 2, 2.0)
        dgx = sort_duration("dgx-a100", "p2p", 8, 2.0)
        assert shape_error([ac922], [dgx]) < 1.2

    def test_merge_dominates_het_on_ac922(self):
        result = sort_run("ibm-ac922", "het", 2, 2.0)
        # Figure 12b: the CPU merge is ~46% of the 2-GPU total.
        assert result.phase_fraction("Merge") == pytest.approx(0.45,
                                                               abs=0.08)

    def test_transfers_dominate_p2p_on_delta(self):
        result = sort_run("delta-d22x", "p2p", 2, 2.0)
        copies = (result.phase_durations["HtoD"]
                  + result.phase_durations["DtoH"])
        # Figure 13a: CPU-GPU transfers are ~84% of the total.
        assert copies / result.duration == pytest.approx(0.84, abs=0.08)

    def test_dgx_merge_phase_fraction_grows_with_gpus(self):
        # Figure 14a: merge is ~4% for two, ~13% for four, ~23% for
        # eight GPUs.
        fractions = [sort_run("dgx-a100", "p2p", g, 2.0)
                     .phase_fraction("Merge") for g in (2, 4, 8)]
        assert fractions[0] < fractions[1] < fractions[2]
        assert fractions[0] < 0.10
        assert 0.10 < fractions[2] < 0.35


class TestLargeDataFigures:
    def test_figure15a_eager_merging_hurts(self):
        from repro.sort import HetConfig

        plain = sort_duration("dgx-a100", "het", 8, 60.0,
                              config=HetConfig(approach="2n"))
        eager = sort_duration("dgx-a100", "het", 8, 60.0,
                              config=HetConfig(approach="2n",
                                               eager_merge=True))
        assert 1.2 < eager / plain < 1.75 * 1.15

    def test_figure15a_2n_equals_3n(self):
        from repro.sort import HetConfig

        two = sort_duration("dgx-a100", "het", 8, 60.0,
                            config=HetConfig(approach="2n"))
        three = sort_duration("dgx-a100", "het", 8, 60.0,
                              config=HetConfig(approach="3n"))
        assert shape_error([two], [three]) < 1.1

    def test_figure15b_het_beats_cpu_for_large_data(self):
        het = sort_duration("dgx-a100", "het", 8, 60.0)
        cpu = cpu_sort_duration("dgx-a100", 60.0, primitive="paradis")
        assert speedup(cpu, het) == pytest.approx(2.6, rel=0.3)

    def test_paradis_endpoint_matches_figure15b(self):
        assert shape_error(
            [cpu_sort_duration("dgx-a100", 60.0, "paradis")],
            [34.0]) < TOLERANCE


class TestDistributionFigure:
    def test_figure16_orderings(self):
        durations = {
            dist: sort_duration("ibm-ac922", "p2p", 2, 2.0,
                                distribution=dist)
            for dist in ("uniform", "sorted", "reverse-sorted",
                         "nearly-sorted")
        }
        assert durations["sorted"] < durations["uniform"]
        assert durations["nearly-sorted"] < durations["uniform"]
        assert durations["reverse-sorted"] > durations["uniform"]
        # Sorted data saves 9-20% (Section 6.3).
        saving = 1 - durations["sorted"] / durations["uniform"]
        assert 0.08 < saving < 0.25

    def test_figure16_het_is_flat(self):
        durations = [sort_duration("ibm-ac922", "het", 2, 2.0,
                                   distribution=dist)
                     for dist in ("uniform", "sorted", "reverse-sorted")]
        assert shape_error(durations, [durations[0]] * 3) < 1.05
