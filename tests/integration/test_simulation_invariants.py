"""Property-based invariants of the simulation core.

Randomized flow scenarios and topologies must satisfy conservation and
bound laws regardless of the concrete numbers — the backbone guarantees
every calibrated result rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.links import LinkKind
from repro.hw.topology import NodeKind, Topology
from repro.sim.engine import Environment
from repro.sim.flows import FlowNetwork
from repro.sim.resources import Direction, Resource

FWD = Direction.FWD


def drain(env, flows):
    def waiter():
        yield env.all_of([f.done for f in flows])

    env.run(env.process(waiter()))


class TestFlowInvariants:
    @given(st.lists(st.tuples(st.floats(1.0, 1e4), st.floats(0.0, 50.0)),
                    min_size=1, max_size=12),
           st.floats(1.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_capacity_bound(self, jobs, capacity):
        """Delivered bytes equal offered bytes; makespan respects both
        the capacity bound and the largest-job bound."""
        env = Environment()
        net = FlowNetwork(env)
        link = Resource("link", capacity)
        flows = []

        def starter():
            for size, delay in jobs:
                yield env.timeout(delay)
                flows.append(net.start_flow([(link, FWD)], size))

        env.run(env.process(starter()))
        drain(env, flows)
        total = sum(size for size, _ in jobs)
        assert net.delivered[(link, FWD)] == pytest.approx(total, rel=1e-6)
        # The starter sleeps between submissions, so arrivals are at
        # cumulative delays.
        last_arrival = sum(delay for _, delay in jobs)
        # Flows may finish a relative epsilon early (the fluid model's
        # completion tolerance), hence the slack.
        lower = max(total / capacity, last_arrival)
        assert env.now >= lower * (1 - 1e-5) - 1e-9
        # All jobs back to back can never take longer than serial
        # service after the last arrival.
        upper = last_arrival + total / capacity
        assert env.now <= upper * (1 + 1e-5) + 1e-6

    @given(st.integers(1, 8), st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_equal_flows_finish_together(self, count, capacity):
        env = Environment()
        net = FlowNetwork(env)
        link = Resource("link", capacity)
        flows = [net.start_flow([(link, FWD)], 100.0)
                 for _ in range(count)]
        drain(env, flows)
        finish_times = {f.finished_at for f in flows}
        assert len(finish_times) == 1
        assert env.now == pytest.approx(100.0 * count / capacity)

    @given(st.floats(0.1, 0.999))
    @settings(max_examples=20, deadline=None)
    def test_duplex_factor_never_speeds_up(self, factor):
        def bidir_time(duplex):
            env = Environment()
            net = FlowNetwork(env)
            link = Resource("link", 10.0, duplex_factor=duplex)
            flows = [net.start_flow([(link, FWD)], 100.0),
                     net.start_flow([(link, Direction.REV)], 100.0)]
            drain(env, flows)
            return env.now

        assert bidir_time(factor) >= bidir_time(1.0) - 1e-9


class TestRandomTopologies:
    @given(st.integers(2, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_routing_reaches_every_gpu(self, gpu_count, data):
        """Random trees of switches + GPUs stay fully routable."""
        topology = Topology("fuzz")
        topology.add_node("cpu0", NodeKind.CPU,
                          memory=Resource("mem0", 100.0))
        attach_points = ["cpu0"]
        for s in range(data.draw(st.integers(0, 3))):
            parent = data.draw(st.sampled_from(attach_points))
            name = f"sw{s}"
            topology.add_node(name, NodeKind.SWITCH)
            topology.add_edge(parent, name,
                              Resource(f"up{s}", 25.0), LinkKind.PCIE4)
            attach_points.append(name)
        for gpu in range(gpu_count):
            parent = data.draw(st.sampled_from(attach_points))
            name = f"gpu{gpu}"
            topology.add_node(name, NodeKind.GPU,
                              memory=Resource(f"gmem{gpu}", 700.0))
            topology.add_edge(parent, name,
                              Resource(f"down{gpu}", 12.5), LinkKind.PCIE3)
        for gpu in range(gpu_count):
            route = topology.route("cpu0", f"gpu{gpu}")
            assert route.hops
            assert route.bottleneck <= 25.0
            back = topology.route(f"gpu{gpu}", "cpu0")
            assert len(back.hops) == len(route.hops)
        # GPU-to-GPU routes exist and never transit other GPUs.
        route = topology.route("gpu0", f"gpu{gpu_count - 1}")
        crossed = {res.name for res, _ in route.hops}
        for other in range(1, gpu_count - 1):
            assert f"gmem{other}" not in crossed

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_sort_correct_on_random_machine(self, seed):
        """A randomly shaped custom platform still sorts correctly."""
        from repro.hw import SystemBuilder
        from repro.runtime import Machine
        from repro.sort import het_sort
        from repro.units import gb, gib

        rng = np.random.default_rng(seed)
        builder = SystemBuilder(f"fuzz{seed}")
        nodes = int(rng.integers(1, 3))
        for _ in range(nodes):
            builder.add_numa_node(read_bw=gb(float(rng.integers(50, 200))),
                                  write_bw=gb(float(rng.integers(50, 200))),
                                  capacity=gib(256))
        if nodes == 2:
            builder.connect_numa_nodes(0, 1, LinkKind.UPI,
                                       gb(float(rng.integers(30, 100))))
        gpu_count = int(rng.integers(1, 5))
        for _ in range(gpu_count):
            builder.add_gpu(numa=int(rng.integers(0, nodes)),
                            spec=SystemBuilder.v100_spec(),
                            link=LinkKind.PCIE3,
                            bandwidth=gb(float(rng.integers(8, 14))))
        spec = builder.build(cpu=SystemBuilder.generic_cpu())
        machine = Machine(spec, scale=1)
        keys = rng.integers(0, 1000, size=2000).astype(np.int32)
        result = het_sort(machine, keys,
                          gpu_ids=tuple(range(gpu_count)))
        assert np.array_equal(result.output, np.sort(keys))
        assert result.duration > 0
