"""Unit tests of the bounded queue and the admission controller."""

import numpy as np
import pytest

from repro.errors import AdmissionRejected, ServiceError
from repro.serve import AdmissionController, BoundedJobQueue, JobSpec, Tenant
from repro.serve.admission import scratch_bytes
from repro.serve.queue import PendingJob


def _spec(**overrides) -> JobSpec:
    base = dict(job_id=0, tenant="acme", arrival_s=0.0, keys=1024,
                gpus=2, algorithm="p2p")
    base.update(overrides)
    return JobSpec(**base)


def _pending(spec=None) -> PendingJob:
    spec = spec or _spec()
    return PendingJob(spec=spec, data=np.zeros(4, dtype=np.int32),
                      submitted_s=0.0)


class TestBoundedQueue:
    def test_capacity_is_enforced(self):
        queue = BoundedJobQueue(2)
        queue.push(_pending())
        assert not queue.full
        queue.push(_pending())
        assert queue.full
        with pytest.raises(ServiceError):
            queue.push(_pending())

    def test_pop_at_preserves_the_rest(self):
        queue = BoundedJobQueue(4)
        entries = [_pending(_spec(job_id=i)) for i in range(3)]
        for entry in entries:
            queue.push(entry)
        assert queue.pop_at(1) is entries[1]
        assert [e.spec.job_id for e in queue] == [0, 2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceError):
            BoundedJobQueue(0)


class TestScratchBytes:
    def test_p2p_pads_to_a_gpu_multiple(self):
        spec = _spec(keys=1001, gpus=4, dtype="int32")
        assert scratch_bytes(spec) == 1004 * 4

    def test_het_borrows_the_input_size(self):
        spec = _spec(keys=1001, gpus=1, algorithm="het", dtype="int64")
        assert scratch_bytes(spec) == 1001 * 8


class TestAdmission:
    def _controller(self, capacity=2, estimate=lambda spec: 0.1):
        return AdmissionController(BoundedJobQueue(capacity), estimate)

    def test_clean_admission_returns(self):
        self._controller().admit(_spec(), Tenant("acme"))

    def test_draining_rejects_everything_first(self):
        controller = self._controller(capacity=1)
        controller.queue.push(_pending())  # also full
        controller.draining = True
        with pytest.raises(AdmissionRejected) as err:
            controller.admit(_spec(), Tenant("acme"))
        assert err.value.reason == "draining"

    def test_full_queue_rejects_typed(self):
        controller = self._controller(capacity=1)
        controller.queue.push(_pending())
        with pytest.raises(AdmissionRejected) as err:
            controller.admit(_spec(), Tenant("acme"))
        assert err.value.reason == "queue-full"

    def test_quota_exceeded_rejects_before_deadline_check(self):
        controller = self._controller(estimate=lambda spec: 100.0)
        tenant = Tenant("capped", quota_bytes=64)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit(_spec(keys=1024, deadline_s=0.001), tenant)
        assert err.value.reason == "quota-exceeded"

    def test_infeasible_deadline_rejects(self):
        controller = self._controller(estimate=lambda spec: 5.0)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit(_spec(deadline_s=1.0), Tenant("acme"))
        assert err.value.reason == "deadline-infeasible"

    def test_feasible_deadline_admits(self):
        controller = self._controller(estimate=lambda spec: 0.5)
        controller.admit(_spec(deadline_s=1.0), Tenant("acme"))

    def test_best_effort_jobs_skip_the_deadline_check(self):
        controller = self._controller(estimate=lambda spec: 1e9)
        controller.admit(_spec(deadline_s=None), Tenant("acme"))
