"""Unit tests of the gang scheduler: placement, batching, policies."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.hw import ibm_ac922
from repro.runtime import Machine
from repro.serve import (
    BoundedJobQueue,
    CircuitBreaker,
    GangScheduler,
    JobSpec,
    Tenant,
)
from repro.serve.queue import PendingJob


def _machine() -> Machine:
    return Machine(ibm_ac922(), scale=1)


def _spec(**overrides) -> JobSpec:
    base = dict(job_id=0, tenant="acme", arrival_s=0.0, keys=4096,
                gpus=2, algorithm="p2p")
    base.update(overrides)
    return JobSpec(**base)


def _queued(*specs) -> BoundedJobQueue:
    queue = BoundedJobQueue(max(len(specs), 1))
    for spec in specs:
        queue.push(PendingJob(spec=spec,
                              data=np.zeros(4, dtype=np.int32),
                              submitted_s=spec.arrival_s))
    return queue


class TestPlacement:
    def test_exclusive_jobs_take_whole_gpus(self):
        scheduler = GangScheduler(_machine())
        placement = scheduler.place(_spec(gpus=2))
        assert placement is not None
        assert placement.exclusive
        assert len(placement.gpu_ids) == 2
        # The same GPUs are gone until release.
        second = scheduler.place(_spec(gpus=4))
        assert second is None
        third = scheduler.place(_spec(gpus=2))
        assert third is not None
        assert set(third.gpu_ids).isdisjoint(placement.gpu_ids)

    def test_release_returns_the_gang(self):
        scheduler = GangScheduler(_machine())
        placement = scheduler.place(_spec(gpus=4))
        assert scheduler.place(_spec(gpus=1)) is None
        scheduler.release(placement)
        assert scheduler.place(_spec(gpus=4)) is not None

    def test_small_jobs_batch_onto_shared_gpus(self):
        scheduler = GangScheduler(_machine(), slots_per_gpu=2,
                                  small_job_keys=1024)
        small = _spec(keys=512, gpus=1, algorithm="het")
        first = scheduler.place(small)
        assert first is not None and not first.exclusive
        # 4 GPUs x 2 slots: eight small jobs fit at once.
        placements = [scheduler.place(small) for _ in range(7)]
        assert all(p is not None for p in placements)
        assert scheduler.place(small) is None

    def test_small_jobs_spread_before_stacking(self):
        scheduler = GangScheduler(_machine(), slots_per_gpu=2,
                                  small_job_keys=1024)
        small = _spec(keys=512, gpus=1, algorithm="het")
        used = [scheduler.place(small).gpu_ids[0] for _ in range(4)]
        assert sorted(used) == [0, 1, 2, 3]

    def test_shared_gpus_refuse_exclusive_jobs(self):
        scheduler = GangScheduler(_machine(), slots_per_gpu=2,
                                  small_job_keys=1024)
        for _ in range(4):
            assert scheduler.place(
                _spec(keys=512, gpus=1, algorithm="het")) is not None
        assert scheduler.place(_spec(gpus=4)) is None

    def test_zero_small_job_keys_disables_batching(self):
        scheduler = GangScheduler(_machine(), small_job_keys=0)
        placement = scheduler.place(_spec(keys=1, gpus=1))
        assert placement is not None
        assert placement.exclusive

    def test_quarantined_gpus_are_never_allocated(self):
        breaker = CircuitBreaker()
        breaker.quarantined.add(0)
        scheduler = GangScheduler(_machine(), breaker=breaker)
        assert 0 not in scheduler.healthy_gpus()
        placement = scheduler.place(_spec(gpus=3))
        assert placement is not None
        assert 0 not in placement.gpu_ids
        assert scheduler.place(_spec(gpus=1)) is None

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ServiceError):
            GangScheduler(_machine(), policy="lifo")
        with pytest.raises(ServiceError):
            GangScheduler(_machine(), slots_per_gpu=0)


class TestPolicies:
    def test_fair_picks_the_starved_tenant(self):
        scheduler = GangScheduler(_machine(), policy="fair")
        tenants = {"acme": Tenant("acme"), "globex": Tenant("globex")}
        tenants["acme"].gpu_seconds = 10.0
        queue = _queued(_spec(job_id=0, tenant="acme"),
                        _spec(job_id=1, tenant="globex"))
        assert scheduler.pick(queue, tenants) == 1

    def test_fair_breaks_ties_by_age(self):
        scheduler = GangScheduler(_machine(), policy="fair")
        tenants = {"acme": Tenant("acme"), "globex": Tenant("globex")}
        queue = _queued(_spec(job_id=0, tenant="globex"),
                        _spec(job_id=1, tenant="acme"))
        assert scheduler.pick(queue, tenants) == 0

    def test_sjf_picks_the_shortest_job(self):
        scheduler = GangScheduler(
            _machine(), policy="sjf",
            estimate_service_s=lambda spec: spec.keys)
        tenants = {"acme": Tenant("acme")}
        queue = _queued(_spec(job_id=0, keys=8192),
                        _spec(job_id=1, keys=1024))
        assert scheduler.pick(queue, tenants) == 1

    def test_backfill_skips_unplaceable_head(self):
        scheduler = GangScheduler(_machine(), policy="fair")
        held = scheduler.place(_spec(gpus=2))
        assert held is not None
        tenants = {"acme": Tenant("acme")}
        queue = _queued(_spec(job_id=0, gpus=4),   # cannot fit now
                        _spec(job_id=1, gpus=2))   # can
        assert scheduler.pick(queue, tenants) == 1

    def test_nothing_placeable_returns_none(self):
        scheduler = GangScheduler(_machine())
        held = scheduler.place(_spec(gpus=4))
        assert held is not None
        queue = _queued(_spec(job_id=0, gpus=1))
        assert scheduler.pick(queue, {"acme": Tenant("acme")}) is None
