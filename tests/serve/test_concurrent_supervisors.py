"""Two supervised sorts sharing one simulated machine.

The service's core concurrency claim, tested without the service:
running :meth:`~repro.recovery.supervisor.SortSupervisor.sort_async`
under two processes on *disjoint* GPU gangs must produce exactly the
arrays each sort produces alone — including when one job replans
around a killed GPU while the other keeps its gang.
"""

import numpy as np
import pytest

from repro.faults.events import GpuFail
from repro.faults.plan import FaultPlan
from repro.hw import dgx_a100
from repro.recovery import SortSupervisor, SupervisorConfig
from repro.runtime import Machine

N = 16_000
SCALE = 1.0e9 / N
GANG_A = (0, 1, 2, 3)
GANG_B = (4, 5, 6, 7)


def _data(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**31, N, dtype=np.int64)


def _machine(plan=None) -> Machine:
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    if plan is not None:
        machine.install_faults(plan)
    return machine


def _run_concurrently(machine, jobs):
    """``jobs``: ``{name: (data, gpu_ids)}`` → ``{name: SortResult}``."""
    env = machine.env
    results = {}

    def job(name, data, gpu_ids):
        supervisor = SortSupervisor(
            machine, SupervisorConfig(job_label=name))
        results[name] = yield from supervisor.sort_async(
            data, algorithm="p2p", gpu_ids=gpu_ids)

    processes = [env.process(job(name, data, gpu_ids))
                 for name, (data, gpu_ids) in jobs.items()]
    env.run(until=env.all_of(processes))
    return results


@pytest.fixture(scope="module")
def solo_results():
    """Each job run alone on a fresh machine — the reference outputs."""
    return {
        "a": SortSupervisor(_machine()).sort(_data(1), algorithm="p2p",
                                             gpu_ids=GANG_A),
        "b": SortSupervisor(_machine()).sort(_data(2), algorithm="p2p",
                                             gpu_ids=GANG_B),
    }


class TestDisjointGangs:
    def test_concurrent_jobs_match_solo_runs(self, solo_results):
        results = _run_concurrently(_machine(), {
            "a": (_data(1), GANG_A),
            "b": (_data(2), GANG_B),
        })
        for name in ("a", "b"):
            assert np.array_equal(results[name].output,
                                  solo_results[name].output)
            assert results[name].gpu_ids == tuple(
                solo_results[name].gpu_ids)
            assert results[name].replans == 0

    def test_concurrent_jobs_overlap_in_time(self):
        machine = _machine()
        results = _run_concurrently(machine, {
            "a": (_data(1), GANG_A),
            "b": (_data(2), GANG_B),
        })
        # Both started at 0 on one clock; the episode is shorter than
        # the two durations back to back.
        total = results["a"].duration + results["b"].duration
        assert machine.env.now < total

    def test_concurrent_runs_are_deterministic(self):
        jobs = {"a": (_data(1), GANG_A), "b": (_data(2), GANG_B)}
        first = _run_concurrently(_machine(), dict(jobs))
        second = _run_concurrently(_machine(), dict(jobs))
        for name in jobs:
            assert first[name].duration == second[name].duration
            assert np.array_equal(first[name].output,
                                  second[name].output)


class TestFaultIsolation:
    def test_one_job_replans_while_the_other_is_unaffected(
            self, solo_results):
        """A GPU in job A's gang dies mid-run: A replans onto its
        survivors and still sorts; B's gang is untouched and its output
        identical to a solo run."""
        at = 0.5 * solo_results["a"].duration
        plan = FaultPlan(events=(GpuFail(at=at, gpu=2),))
        results = _run_concurrently(_machine(plan), {
            "a": (_data(1), GANG_A),
            "b": (_data(2), GANG_B),
        })
        assert results["a"].replans >= 1
        assert 2 in results["a"].excluded_gpus
        assert 2 not in results["a"].gpu_ids
        assert np.array_equal(results["a"].output,
                              np.sort(_data(1)))
        assert results["b"].replans == 0
        assert results["b"].excluded_gpus == ()
        assert tuple(results["b"].gpu_ids) == GANG_B
        assert np.array_equal(results["b"].output,
                              solo_results["b"].output)
