"""End-to-end tests of the sort service: episodes under load, faults,
drain and shutdown.

Each episode runs a hand-written job list on a functional IBM AC922
(4 GPUs), so every scheduling claim is checked against actual sorted
output, not just counters.
"""

import json

import numpy as np
import pytest

from repro.data import generate
from repro.errors import ServiceError
from repro.faults.events import GpuFail, StragglerGpu
from repro.faults.plan import FaultPlan
from repro.hw import ibm_ac922
from repro.runtime import Machine
from repro.serve import (
    JobSpec,
    ServiceConfig,
    SortService,
    Tenant,
    WorkloadSpec,
    generate_jobs,
)

SCALE = 1e5


def _machine(plan=None) -> Machine:
    machine = Machine(ibm_ac922(), scale=SCALE, fast_functional=True)
    if plan is not None:
        machine.install_faults(plan)
    return machine


def _spec(job_id, **overrides) -> JobSpec:
    base = dict(job_id=job_id, tenant=("acme", "globex")[job_id % 2],
                arrival_s=0.02 * job_id, keys=4096, gpus=2,
                algorithm="p2p", seed=job_id + 1)
    base.update(overrides)
    return JobSpec(**base)


def _expected(spec: JobSpec) -> np.ndarray:
    return np.sort(generate(spec.keys, "uniform", np.dtype(spec.dtype),
                            seed=spec.seed))


class TestEpisodes:
    def test_jobs_complete_with_sorted_output(self):
        jobs = [_spec(i) for i in range(6)]
        report = SortService(_machine()).run(jobs)
        assert report.completed == 6
        assert report.offered == 6
        for result in report.results:
            assert result.status == "completed"
            assert np.array_equal(result.sort.output,
                                  _expected(result.spec))
            assert result.latency_s > 0
            assert len(result.gpu_ids) == result.spec.gpus

    def test_disjoint_gangs_run_concurrently(self):
        # Two 2-GPU jobs submitted together overlap in time.
        jobs = [_spec(0, arrival_s=0.0), _spec(1, arrival_s=0.0)]
        report = SortService(_machine()).run(jobs)
        first, second = sorted(report.results,
                               key=lambda r: r.spec.job_id)
        assert set(first.gpu_ids).isdisjoint(second.gpu_ids)
        assert second.started_s < first.finished_s

    def test_report_is_deterministic(self):
        jobs = [_spec(i) for i in range(5)]
        a = SortService(_machine()).run(list(jobs))
        b = SortService(_machine()).run(list(jobs))
        assert json.dumps(a.to_json(), sort_keys=True) \
            == json.dumps(b.to_json(), sort_keys=True)

    def test_observability_does_not_change_the_episode(self):
        jobs = [_spec(i) for i in range(5)]
        plain = SortService(_machine()).run(list(jobs))
        machine = _machine()
        machine.enable_observability()
        observed = SortService(machine).run(list(jobs))
        assert json.dumps(plain.to_json(), sort_keys=True) \
            == json.dumps(observed.to_json(), sort_keys=True)

    def test_one_episode_per_instance(self):
        service = SortService(_machine())
        service.run([_spec(0)])
        with pytest.raises(ServiceError):
            service.run([_spec(1)])

    def test_empty_workload_rejected(self):
        with pytest.raises(ServiceError):
            SortService(_machine()).run([])

    def test_generated_workload_runs_end_to_end(self):
        workload = WorkloadSpec(jobs=10, arrival_rate=20.0,
                                base_keys=4096, deadline_slack=None,
                                seed=11)
        report = SortService(_machine()).run(generate_jobs(workload))
        assert report.offered == 10
        assert report.completed + report.rejected \
            + report.by_status.get("failed", 0) == 10


class TestOverload:
    def test_overload_sheds_typed_and_bounds_the_queue(self):
        jobs = [_spec(i, arrival_s=0.0) for i in range(12)]
        service = SortService(
            _machine(), config=ServiceConfig(queue_capacity=4))
        report = service.run(jobs)
        assert report.rejected > 0
        assert set(report.rejections) == {"queue-full"}
        assert report.peak_queue <= 4
        assert report.completed == 12 - report.rejected
        # Admitted jobs still sort correctly under pressure.
        for result in report.results:
            if result.status == "completed":
                assert np.array_equal(result.sort.output,
                                      _expected(result.spec))

    def test_quota_rejections_are_per_tenant(self):
        jobs = [_spec(0, tenant="capped"), _spec(1, tenant="acme")]
        service = SortService(
            _machine(), tenants=[Tenant("capped", quota_bytes=64)])
        report = service.run(jobs)
        by_id = {r.spec.job_id: r for r in report.results}
        assert by_id[0].status == "rejected"
        assert by_id[0].reason == "quota-exceeded"
        assert by_id[1].status == "completed"
        assert report.tenants["capped"]["rejected"] \
            == {"quota-exceeded": 1}

    def test_expired_in_queue_is_shed_typed(self):
        # A large exclusive job holds all four GPUs well past the
        # second job's deadline; the stale job must be shed at
        # dispatch, not run.
        hog = _spec(0, arrival_s=0.0, keys=32768, gpus=4)
        stale = _spec(1, arrival_s=0.0, keys=512, gpus=4,
                      deadline_s=0.1)
        report = SortService(_machine()).run([hog, stale])
        by_id = {r.spec.job_id: r for r in report.results}
        assert by_id[0].status == "completed"
        assert by_id[1].status == "deadline"
        assert by_id[1].reason == "expired-in-queue"
        assert by_id[1].gpu_ids == ()

    def test_deadline_budget_exhaustion_is_typed(self):
        # An optimistic rate model admits the job; the supervisor's
        # deadline budget then expires mid-run.
        job = _spec(0, gpus=4, deadline_s=0.001)
        service = SortService(_machine(), config=ServiceConfig(
            gpu_rate_keys_per_s=1e15))
        report = service.run([job])
        result = report.results[0]
        assert result.status == "deadline"
        assert result.reason == "deadline-budget"
        assert result.sort is not None
        assert result.sort.deadline_exceeded

    def test_impossible_gang_fails_typed(self):
        jobs = [_spec(0, gpus=8), _spec(1, gpus=2)]
        report = SortService(_machine()).run(jobs)
        by_id = {r.spec.job_id: r for r in report.results}
        assert by_id[0].status == "failed"
        assert by_id[0].reason == "unschedulable"
        assert by_id[1].status == "completed"


class TestFaults:
    def test_straggler_trips_the_breaker_and_is_avoided(self):
        plan = FaultPlan(events=(
            StragglerGpu(at=0.0, gpu=3, duration=1e9, slowdown=2.0),))
        jobs = [_spec(i, arrival_s=0.0, gpus=1, algorithm="het",
                      keys=2048) for i in range(20)]
        service = SortService(
            _machine(plan), config=ServiceConfig(queue_capacity=20))
        report = service.run(jobs)
        assert report.completed == 20
        assert report.quarantined == (3,)
        trips = service.breaker.trips
        assert trips and trips[0][0] == 3
        used_after_trip = [
            r for r in report.results
            if r.started_s is not None and r.started_s > trips[0][1]
            and 3 in r.gpu_ids]
        assert used_after_trip == []
        charged = [r for r in report.results
                   if 3 in r.gpu_ids and r.started_s is not None
                   and r.started_s <= trips[0][1]]
        assert len(charged) == service.breaker.threshold

    def test_killed_gpu_replans_then_quarantines(self):
        clean = SortService(_machine()).run(
            [_spec(0, arrival_s=0.0, gpus=4)])
        duration = clean.results[0].latency_s
        plan = FaultPlan(events=(
            GpuFail(at=0.5 * duration, gpu=3),))
        jobs = [_spec(0, arrival_s=0.0, gpus=4),
                _spec(1, arrival_s=2.0 * duration, gpus=2)]
        report = SortService(_machine(plan)).run(jobs)
        by_id = {r.spec.job_id: r for r in report.results}
        assert by_id[0].status == "completed"
        assert by_id[0].sort.replans >= 1
        assert np.array_equal(by_id[0].sort.output,
                              _expected(by_id[0].spec))
        assert report.quarantined == (3,)
        assert by_id[1].status == "completed"
        assert 3 not in by_id[1].gpu_ids


class TestDrainAndShutdown:
    def test_drain_rejects_new_work_and_finishes_the_rest(self):
        jobs = [_spec(i, arrival_s=0.0) for i in range(2)] \
            + [_spec(9, arrival_s=100.0)]
        service = SortService(_machine(), config=ServiceConfig(
            drain_at_s=0.01))
        report = service.run(jobs)
        by_id = {r.spec.job_id: r for r in report.results}
        assert by_id[0].status == "completed"
        assert by_id[1].status == "completed"
        assert by_id[9].status == "rejected"
        assert by_id[9].reason == "draining"

    def test_shutdown_cancels_typed_without_hanging(self):
        jobs = [_spec(i, arrival_s=0.0, keys=16384) for i in range(6)]
        service = SortService(_machine(), config=ServiceConfig(
            queue_capacity=6, drain_at_s=0.0005,
            shutdown_grace_s=0.0005))
        report = service.run(jobs)
        assert report.offered == 6
        cancelled = [r for r in report.results
                     if r.status == "cancelled"]
        assert cancelled
        for result in cancelled:
            assert result.reason == "shutdown"
        assert {r.status for r in report.results} \
            <= {"cancelled", "completed"}
        # The machine unwound cleanly: nothing still running or queued.
        assert service._running == {}
        assert len(service.queue) == 0


class TestReportShape:
    def test_to_json_is_serializable_and_complete(self):
        jobs = [_spec(i) for i in range(4)]
        report = SortService(_machine()).run(jobs)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["offered"] == 4
        assert payload["by_status"] == {"completed": 4}
        assert payload["rejections"] == {}
        assert payload["p99_latency_s"] >= payload["p50_latency_s"] > 0
        assert payload["jobs_per_s"] > 0
        assert len(payload["jobs"]) == 4
        for row in payload["jobs"]:
            assert row["status"] == "completed"
            assert row["latency_s"] >= row["queue_wait_s"] >= 0
        assert set(payload["tenants"]) == {"acme", "globex"}
