"""Unit tests of the seeded workload generator."""

import pytest

from repro.errors import ServiceError
from repro.serve import WorkloadSpec, generate_jobs
from repro.serve.workload import DEFAULT_MIX


def _spec(**overrides) -> WorkloadSpec:
    base = dict(jobs=40, arrival_rate=10.0, base_keys=8192, seed=3)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestGeneration:
    def test_same_spec_same_jobs(self):
        assert generate_jobs(_spec()) == generate_jobs(_spec())

    def test_different_seeds_differ(self):
        assert generate_jobs(_spec()) != generate_jobs(_spec(seed=4))

    def test_arrivals_are_increasing(self):
        jobs = generate_jobs(_spec())
        arrivals = [job.arrival_s for job in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_job_ids_are_sequential(self):
        jobs = generate_jobs(_spec())
        assert [job.job_id for job in jobs] == list(range(40))

    def test_every_job_has_a_distinct_data_seed(self):
        jobs = generate_jobs(_spec())
        assert len({job.seed for job in jobs}) == len(jobs)

    def test_mix_rows_are_respected(self):
        jobs = generate_jobs(_spec())
        allowed = {(max(1, int(8192 * fraction)), gpus, algorithm)
                   for _, fraction, gpus, algorithm, _ in DEFAULT_MIX}
        assert {(job.keys, job.gpus, job.algorithm)
                for job in jobs} <= allowed

    def test_deadlines_scale_with_size_over_gpus(self):
        jobs = generate_jobs(_spec(deadline_slack=4.0, est_service_s=0.5))
        for job in jobs:
            expected = 4.0 * 0.5 * (job.keys / 8192) / job.gpus
            assert job.deadline_s == pytest.approx(expected)

    def test_no_slack_means_no_deadlines(self):
        jobs = generate_jobs(_spec(deadline_slack=None))
        assert all(job.deadline_s is None for job in jobs)

    def test_tenants_come_from_the_spec(self):
        jobs = generate_jobs(_spec(tenants=("solo",)))
        assert {job.tenant for job in jobs} == {"solo"}


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        dict(jobs=0),
        dict(arrival_rate=0.0),
        dict(base_keys=0),
        dict(tenants=()),
        dict(mix=()),
    ])
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(ServiceError):
            _spec(**overrides)
