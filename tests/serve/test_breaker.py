"""Unit tests of the GPU circuit breaker."""

import pytest

from repro.faults.injector import FaultRecord
from repro.hw import ibm_ac922
from repro.runtime import Machine
from repro.serve import CircuitBreaker


class _StubFaults:
    """Minimal stand-in for the injector: a timeline and failed set."""

    def __init__(self, timeline=(), failed=()):
        self.timeline = list(timeline)
        self._failed = set(failed)

    def is_failed(self, gpu: int) -> bool:
        return gpu in self._failed


def _machine(faults=None) -> Machine:
    machine = Machine(ibm_ac922(), scale=1)
    if faults is not None:
        machine.faults = faults
    return machine


def _straggle(gpu: int, start: float, end=None) -> FaultRecord:
    return FaultRecord(kind="straggler", target=f"gpu{gpu}",
                       start=start, end=end)


class TestBreaker:
    def test_three_consecutive_faulted_jobs_trip(self):
        machine = _machine(_StubFaults([_straggle(1, 0.0)]))
        breaker = CircuitBreaker(threshold=3)
        for end in (1.0, 2.0):
            assert breaker.observe_job(machine, [1], end - 1.0, end) \
                == set()
            assert not breaker.is_quarantined(1)
        assert breaker.observe_job(machine, [1], 2.0, 3.0) == {1}
        assert breaker.is_quarantined(1)
        assert breaker.trips == [(1, 3.0)]

    def test_clean_job_resets_the_count(self):
        # One fault window covering jobs 1-2 but not job 3.
        machine = _machine(_StubFaults([_straggle(1, 0.0, end=2.0)]))
        breaker = CircuitBreaker(threshold=3)
        breaker.observe_job(machine, [1], 0.0, 1.0)
        breaker.observe_job(machine, [1], 1.0, 2.0)
        assert breaker.consecutive[1] == 2
        breaker.observe_job(machine, [1], 2.5, 3.5)  # clean
        assert breaker.consecutive[1] == 0
        assert not breaker.is_quarantined(1)

    def test_hard_failure_quarantines_immediately(self):
        machine = _machine(_StubFaults(failed=[2]))
        breaker = CircuitBreaker(threshold=3)
        assert breaker.observe_job(machine, [2], 0.0, 1.0) == {2}
        assert breaker.is_quarantined(2)

    def test_only_the_faulted_gpu_is_charged(self):
        machine = _machine(_StubFaults([_straggle(1, 0.0)]))
        breaker = CircuitBreaker(threshold=1)
        assert breaker.observe_job(machine, [0, 1], 0.0, 1.0) == {1}
        assert not breaker.is_quarantined(0)
        assert breaker.consecutive[0] == 0

    def test_no_injector_counts_as_clean(self):
        machine = _machine()
        breaker = CircuitBreaker()
        assert breaker.observe_job(machine, [0, 1], 0.0, 1.0) == set()
        assert breaker.quarantined == set()

    def test_windows_outside_the_job_do_not_count(self):
        machine = _machine(_StubFaults([_straggle(1, 5.0, end=6.0)]))
        breaker = CircuitBreaker(threshold=1)
        assert breaker.observe_job(machine, [1], 0.0, 1.0) == set()

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.quarantined.add(3)
        breaker.trips.append((3, 1.5))
        snapshot = breaker.snapshot()
        assert snapshot == {
            "threshold": 2,
            "quarantined": [3],
            "trips": [{"gpu": 3, "at_s": 1.5}],
        }

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
