"""Vectorized kernels versus their retained element-wise references.

The tentpole invariant of the vectorized kernel layer: every fast path
produces output *element-identical* to the seed-tree reference it
replaced — the per-bucket counting scatter, the element-wise PARADIS
speculation/repair loop, and the loser-tree multiway merge.  Seeded
random arrays sweep every supported dtype (including ±0.0 for floats);
stable permutations must match exactly, not just sort correctly.
"""

import numpy as np
import pytest

from repro.cpuprims.multiway_merge import (
    multiway_merge,
    multiway_merge_losertree,
    multiway_merge_with_values,
)
from repro.cpuprims.paradis import (
    counters,
    paradis_sort,
    paradis_sort_reference,
)
from repro.gpuprims.common import (
    stable_counting_permutation,
    stable_counting_permutation_reference,
    to_radix_keys,
)
from repro.gpuprims.merge_path import merge_sort, merge_sorted
from repro.gpuprims.radix_lsb import argsort_radix_lsb, radix_sort_lsb
from repro.gpuprims.radix_msb import radix_sort_msb

ALL_DTYPES = [np.int8, np.int16, np.int32, np.int64,
              np.uint8, np.uint16, np.uint32, np.uint64,
              np.float32, np.float64]


def random_array(dtype, size, seed):
    """Seeded random keys of ``dtype``, duplicates likely, NaN-free."""
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    if dtype.kind == "f":
        values = rng.normal(size=size).astype(dtype)
        # Sprinkle signed zeros and exact duplicates.
        values[rng.integers(0, size, size=max(1, size // 10))] = -0.0
        values[rng.integers(0, size, size=max(1, size // 10))] = 0.0
        return values
    info = np.iinfo(dtype)
    # A narrow range forces heavy duplication on the wide dtypes too.
    lo = max(info.min, -120)
    hi = min(info.max, 120)
    return rng.integers(lo, hi + 1, size=size, dtype=dtype)


class TestScatterEquivalence:
    @pytest.mark.parametrize("radix", [4, 16, 256, 1024])
    def test_permutation_identical_to_reference(self, radix, rng):
        digits = rng.integers(0, radix, size=1000).astype(np.int64)
        assert np.array_equal(
            stable_counting_permutation(digits, radix),
            stable_counting_permutation_reference(digits, radix))

    def test_all_buckets_occupied_and_missing(self, rng):
        # Degenerate digit histograms: single bucket, two buckets.
        for digits in (np.zeros(100, np.int64),
                       np.tile([0, 255], 50).astype(np.int64)):
            assert np.array_equal(
                stable_counting_permutation(digits, 256),
                stable_counting_permutation_reference(digits, 256))


class TestRadixSortEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_lsb_sorts_every_dtype(self, dtype):
        values = random_array(dtype, 2000, seed=7)
        expected = np.sort(values, kind="stable")
        assert np.array_equal(radix_sort_lsb(values), expected)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_msb_sorts_every_dtype(self, dtype):
        values = random_array(dtype, 2000, seed=11)
        expected = np.sort(values, kind="stable")
        assert np.array_equal(radix_sort_msb(values), expected)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_merge_sort_every_dtype(self, dtype):
        values = random_array(dtype, 2000, seed=13)
        expected = np.sort(values, kind="stable")
        assert np.array_equal(merge_sort(values), expected)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_argsort_is_stable(self, dtype):
        values = random_array(dtype, 1500, seed=17)
        # Oracle in transformed-key space: the radix argsort totally
        # orders the key *bit patterns* (-0.0 before +0.0), which plain
        # np.argsort on floats cannot distinguish.
        keys, _ = to_radix_keys(values)
        assert np.array_equal(argsort_radix_lsb(values),
                              np.argsort(keys, kind="stable"))

    def test_out_param_and_in_place(self, rng):
        values = rng.integers(-1000, 1000, size=500).astype(np.int32)
        expected = np.sort(values)
        for sorter in (radix_sort_lsb, radix_sort_msb, merge_sort):
            out = np.empty_like(values)
            assert sorter(values, out=out) is out
            assert np.array_equal(out, expected)
            in_place = values.copy()
            assert sorter(in_place, out=in_place) is in_place
            assert np.array_equal(in_place, expected)

    def test_signed_zero_bit_patterns_preserved(self):
        values = np.array([1.0, -0.0, 0.0, -1.0, -0.0], dtype=np.float64)
        for sorter in (radix_sort_lsb, radix_sort_msb):
            result = sorter(values)
            # -0.0 sorts before +0.0 in the total order of the key
            # transform; the bit patterns must survive the round trip.
            assert np.array_equal(np.signbit(result),
                                  [True, True, True, False, False])


class TestParadisEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_vectorized_matches_reference(self, dtype):
        values = random_array(dtype, 1200, seed=19)
        assert np.array_equal(paradis_sort(values),
                              paradis_sort_reference(values))

    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_reference_worker_counts_agree(self, workers, rng):
        values = rng.integers(0, 50, size=600).astype(np.int32)
        expected = np.sort(values)
        assert np.array_equal(
            paradis_sort_reference(values, workers=workers), expected)

    def test_vectorized_runs_one_round_per_level(self, rng):
        values = rng.integers(0, 2**31, size=5000).astype(np.int32)
        counters.reset()
        paradis_sort(values)
        assert counters.levels > 0
        assert counters.rounds == counters.levels

    def test_reference_striping_needs_repair_rounds(self, rng):
        # Duplicate-heavy data with many workers: stripes overflow, so
        # the reference needs more speculative rounds than levels —
        # the observable difference the striping semantics produce.
        values = rng.integers(0, 4, size=4000).astype(np.int32)
        counters.reset()
        paradis_sort_reference(values, workers=8)
        assert counters.rounds > counters.levels


class TestMergeEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_multiway_matches_losertree(self, dtype, k):
        rng = np.random.default_rng(23 + k)
        runs = [np.sort(random_array(dtype, int(rng.integers(0, 300)),
                                     seed=100 + i)) for i in range(k)]
        assert np.array_equal(multiway_merge(runs),
                              multiway_merge_losertree(runs))

    def test_multiway_with_values_and_out(self, rng):
        runs = [np.sort(rng.integers(0, 100, size=50).astype(np.int32))
                for _ in range(3)]
        value_runs = [np.arange(i * 50, (i + 1) * 50, dtype=np.int64)
                      for i in range(3)]
        keys, values = multiway_merge_with_values(runs, value_runs)
        out = np.empty_like(keys)
        values_out = np.empty_like(values)
        keys2, values2 = multiway_merge_with_values(
            runs, value_runs, out=out, values_out=values_out)
        assert keys2 is out and values2 is values_out
        assert np.array_equal(keys, keys2)
        assert np.array_equal(values, values2)
        # Payloads still pair with their original keys.
        lookup = np.concatenate(runs)
        assert np.array_equal(lookup[values % 150], keys)

    def test_merge_sorted_out_matches_allocating_path(self, rng):
        a = np.sort(rng.integers(0, 1000, size=400).astype(np.int64))
        b = np.sort(rng.integers(0, 1000, size=273).astype(np.int64))
        out = np.empty(673, dtype=np.int64)
        assert merge_sorted(a, b, out=out) is out
        assert np.array_equal(out, merge_sorted(a, b))
