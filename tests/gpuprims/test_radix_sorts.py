"""Unit and property tests of the LSB and MSB radix sorts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SortError
from repro.gpuprims import radix_sort_lsb, radix_sort_msb
from repro.gpuprims.radix_lsb import argsort_radix_lsb

SORTS = [radix_sort_lsb, radix_sort_msb]
DTYPES = [np.int32, np.uint32, np.int64, np.float32, np.float64]


@pytest.mark.parametrize("sort_fn", SORTS)
class TestRadixSorts:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_numpy(self, sort_fn, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = (rng.normal(size=3000) * 1e3).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, size=3000,
                                  dtype=dtype)
        assert np.array_equal(sort_fn(values), np.sort(values))

    def test_input_unmodified(self, sort_fn, rng):
        values = rng.integers(0, 100, size=200).astype(np.int32)
        snapshot = values.copy()
        sort_fn(values)
        assert np.array_equal(values, snapshot)

    def test_empty_and_single(self, sort_fn):
        assert sort_fn(np.empty(0, np.int32)).size == 0
        assert list(sort_fn(np.array([7], np.int32))) == [7]

    def test_all_equal(self, sort_fn):
        values = np.full(500, -3, np.int32)
        assert np.array_equal(sort_fn(values), values)

    def test_already_sorted_and_reversed(self, sort_fn):
        values = np.arange(-250, 250, dtype=np.int64)
        assert np.array_equal(sort_fn(values), values)
        assert np.array_equal(sort_fn(values[::-1].copy()), values)

    def test_extreme_values(self, sort_fn):
        info = np.iinfo(np.int32)
        values = np.array([info.max, info.min, 0, -1, 1, info.max,
                           info.min], np.int32)
        assert np.array_equal(sort_fn(values), np.sort(values))

    def test_rejects_bad_radix_bits(self, sort_fn):
        with pytest.raises(SortError):
            sort_fn(np.arange(4, dtype=np.int32), radix_bits=0)
        with pytest.raises(SortError):
            sort_fn(np.arange(4, dtype=np.int32), radix_bits=20)

    def test_rejects_2d(self, sort_fn):
        with pytest.raises(SortError):
            sort_fn(np.zeros((2, 2), np.int32))

    @pytest.mark.parametrize("radix_bits", [1, 3, 4, 8, 11, 16])
    def test_any_digit_width(self, sort_fn, radix_bits, rng):
        values = rng.integers(-1000, 1000, size=400).astype(np.int32)
        assert np.array_equal(sort_fn(values, radix_bits=radix_bits),
                              np.sort(values))

    @given(hnp.arrays(np.int32, st.integers(0, 300)))
    @settings(max_examples=40, deadline=None)
    def test_property_sorted_permutation(self, sort_fn, values):
        result = sort_fn(values)
        assert np.array_equal(np.sort(values), result)


class TestArgsort:
    def test_argsort_is_stable(self, rng):
        values = rng.integers(0, 5, size=400).astype(np.int32)
        order = argsort_radix_lsb(values)
        expected = np.argsort(values, kind="stable")
        assert np.array_equal(order, expected)

    def test_argsort_floats(self, rng):
        values = rng.normal(size=300).astype(np.float32)
        order = argsort_radix_lsb(values)
        assert np.array_equal(values[order], np.sort(values))

    def test_argsort_rejects_2d(self):
        with pytest.raises(SortError):
            argsort_radix_lsb(np.zeros((2, 2), np.int32))
