"""Unit and property tests of the radix key transforms and scatter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SortError
from repro.gpuprims.common import (
    binary_insertion_sort,
    counting_sort_pass,
    from_radix_keys,
    small_sort,
    stable_counting_permutation,
    stable_counting_permutation_reference,
    to_radix_keys,
)

NUMERIC_DTYPES = [np.int32, np.uint32, np.int64, np.uint64,
                  np.float32, np.float64]


def arrays_of(dtype, max_size=200):
    if np.dtype(dtype).kind == "f":
        elements = st.floats(allow_nan=False, width=np.dtype(dtype).itemsize * 8)
        return hnp.arrays(dtype, st.integers(0, max_size), elements=elements)
    return hnp.arrays(dtype, st.integers(0, max_size))


class TestKeyTransforms:
    @pytest.mark.parametrize("dtype", NUMERIC_DTYPES)
    def test_roundtrip(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = rng.normal(size=500).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, size=500, dtype=dtype)
        keys, original = to_radix_keys(values)
        assert np.array_equal(from_radix_keys(keys, original), values)

    @pytest.mark.parametrize("dtype", NUMERIC_DTYPES)
    def test_order_preserving(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = rng.normal(size=500).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, size=500, dtype=dtype)
        keys, _ = to_radix_keys(values)
        order_values = np.argsort(values, kind="stable")
        order_keys = np.argsort(keys, kind="stable")
        assert np.array_equal(values[order_values], values[order_keys])

    def test_negative_zero_and_infinities(self):
        values = np.array([np.inf, -np.inf, 0.0, -0.0, 1.5, -1.5],
                          dtype=np.float64)
        keys, dtype = to_radix_keys(values)
        restored = from_radix_keys(np.sort(keys), dtype)
        assert np.array_equal(restored, np.sort(values))

    def test_non_numeric_rejected(self):
        with pytest.raises(SortError):
            to_radix_keys(np.array(["a", "b"]))

    @given(arrays_of(np.int64))
    @settings(max_examples=50, deadline=None)
    def test_transform_is_monotone_bijection(self, values):
        keys, dtype = to_radix_keys(values)
        assert np.array_equal(from_radix_keys(keys, dtype), values)
        if values.size >= 2:
            comparison = values[:-1] <= values[1:]
            assert np.array_equal(comparison, keys[:-1] <= keys[1:])


class TestCountingScatter:
    def test_permutation_is_stable(self):
        digits = np.array([2, 0, 2, 1, 0, 2], dtype=np.int64)
        order = stable_counting_permutation(digits, radix=4)
        # Sources of equal digits keep their relative order.
        assert list(order) == [1, 4, 3, 0, 2, 5]

    def test_empty(self):
        assert stable_counting_permutation(
            np.empty(0, np.int64), 4).size == 0

    def test_counting_sort_pass_with_payload(self, rng):
        keys = rng.integers(0, 1 << 16, size=300).astype(np.uint32)
        payload = np.arange(300, dtype=np.int64)
        out_keys, out_payload = counting_sort_pass(keys, shift=0,
                                                   radix_bits=8,
                                                   payload=payload)
        digits = out_keys & 0xFF
        assert np.all(np.diff(digits.astype(np.int64)) >= 0)
        assert np.array_equal(keys[out_payload], out_keys)

    @given(hnp.arrays(np.int64, st.integers(0, 150),
                      elements=st.integers(0, 15)))
    @settings(max_examples=50, deadline=None)
    def test_scatter_is_a_permutation(self, digits):
        order = stable_counting_permutation(digits, radix=16)
        assert sorted(order) == list(range(digits.size))
        assert np.all(np.diff(digits[order]) >= 0)

    def test_digit_out_of_range_raises(self):
        for bad in ([4], [-1], [0, 2, 4], [0, -3, 1]):
            digits = np.array(bad, dtype=np.int64)
            with pytest.raises(SortError):
                stable_counting_permutation(digits, radix=4)
            with pytest.raises(SortError):
                stable_counting_permutation_reference(digits, radix=4)

    def test_boundary_digit_accepted(self):
        digits = np.array([0, 3, 1, 3], dtype=np.int64)
        order = stable_counting_permutation(digits, radix=4)
        assert np.all(np.diff(digits[order]) >= 0)

    def test_in_place_scatter_rejected(self):
        keys = np.arange(8, dtype=np.uint32)
        with pytest.raises(SortError):
            counting_sort_pass(keys, shift=0, radix_bits=8, out=keys)
        payload = np.arange(8, dtype=np.int64)
        with pytest.raises(SortError):
            counting_sort_pass(keys, shift=0, radix_bits=8,
                               payload=payload, payload_out=payload)

    def test_preallocated_out_is_used(self, rng):
        keys = rng.integers(0, 1 << 16, size=300).astype(np.uint32)
        out = np.empty_like(keys)
        payload = np.arange(300, dtype=np.int64)
        payload_out = np.empty_like(payload)
        result, result_payload = counting_sort_pass(
            keys, shift=0, radix_bits=8, payload=payload, out=out,
            payload_out=payload_out)
        assert result is out
        assert result_payload is payload_out
        assert np.array_equal(keys[result_payload], result)


class TestInsertionSort:
    def test_sorts_in_place(self, rng):
        keys = rng.integers(0, 100, size=60).astype(np.uint32)
        expected = np.sort(keys)
        binary_insertion_sort(keys)
        assert np.array_equal(keys, expected)

    def test_empty_and_single(self):
        for n in (0, 1):
            keys = np.arange(n, dtype=np.uint32)
            binary_insertion_sort(keys)
            assert keys.size == n

    def test_small_sort_matches_insertion_sort(self, rng):
        for size in (0, 1, 2, 17, 64):
            keys = rng.integers(0, 50, size=size).astype(np.uint32)
            reference = keys.copy()
            binary_insertion_sort(reference)
            small_sort(keys)
            assert np.array_equal(keys, reference)
