"""Unit and property tests of Merge Path partitioning and merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.gpuprims import merge_partitions, merge_sort, merge_sorted


def sorted_array(rng, n, lo=0, hi=1000):
    return np.sort(rng.integers(lo, hi, size=n).astype(np.int32))


class TestMergePartitions:
    def test_segments_cover_both_inputs(self, rng):
        a, b = sorted_array(rng, 100), sorted_array(rng, 57)
        parts = merge_partitions(a, b, segments=8)
        assert len(parts) == 8
        assert parts[0][0] == 0 and parts[0][2] == 0
        assert parts[-1][1] == a.size and parts[-1][3] == b.size
        for (_, a_hi, _, b_hi), (a_lo, _, b_lo, _) in zip(parts, parts[1:]):
            assert a_hi == a_lo and b_hi == b_lo

    def test_segments_are_balanced(self, rng):
        a, b = sorted_array(rng, 128), sorted_array(rng, 128)
        parts = merge_partitions(a, b, segments=4)
        sizes = [(a_hi - a_lo) + (b_hi - b_lo)
                 for a_lo, a_hi, b_lo, b_hi in parts]
        assert sizes == [64, 64, 64, 64]

    def test_segment_merges_concatenate_to_full_merge(self, rng):
        a, b = sorted_array(rng, 90), sorted_array(rng, 110)
        parts = merge_partitions(a, b, segments=7)
        pieces = [np.sort(np.concatenate([a[a_lo:a_hi], b[b_lo:b_hi]]))
                  for a_lo, a_hi, b_lo, b_hi in parts]
        assert np.array_equal(np.concatenate(pieces),
                              np.sort(np.concatenate([a, b])))

    def test_invalid_segments(self, rng):
        with pytest.raises(SortError):
            merge_partitions(sorted_array(rng, 4), sorted_array(rng, 4), 0)


class TestMergeSorted:
    def test_matches_numpy(self, rng):
        a, b = sorted_array(rng, 500), sorted_array(rng, 300)
        assert np.array_equal(merge_sorted(a, b),
                              np.sort(np.concatenate([a, b])))

    def test_empty_inputs(self, rng):
        a = sorted_array(rng, 10)
        empty = np.empty(0, np.int32)
        assert np.array_equal(merge_sorted(a, empty), a)
        assert np.array_equal(merge_sorted(empty, a), a)

    def test_heavy_duplicates(self):
        a = np.zeros(100, np.int32)
        b = np.zeros(100, np.int32)
        assert np.array_equal(merge_sorted(a, b), np.zeros(200, np.int32))

    def test_disjoint_ranges(self):
        a = np.arange(100, dtype=np.int32)
        b = np.arange(100, 200, dtype=np.int32)
        assert np.array_equal(merge_sorted(b, a),
                              np.arange(200, dtype=np.int32))

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(SortError):
            merge_sorted(np.zeros(2, np.int32), np.zeros(2, np.int64))

    @pytest.mark.parametrize("segments", [1, 2, 3, 16, 100])
    def test_segment_count_does_not_change_result(self, rng, segments):
        a, b = sorted_array(rng, 77), sorted_array(rng, 34)
        assert np.array_equal(merge_sorted(a, b, segments=segments),
                              np.sort(np.concatenate([a, b])))

    @given(st.lists(st.integers(-1000, 1000), max_size=150),
           st.lists(st.integers(-1000, 1000), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_property_merge(self, xs, ys):
        a = np.sort(np.array(xs, dtype=np.int64))
        b = np.sort(np.array(ys, dtype=np.int64))
        assert np.array_equal(merge_sorted(a, b),
                              np.sort(np.concatenate([a, b])))


class TestMergeSort:
    def test_matches_numpy(self, rng):
        values = rng.integers(-500, 500, size=2000).astype(np.int32)
        assert np.array_equal(merge_sort(values), np.sort(values))

    def test_small_inputs(self):
        assert merge_sort(np.empty(0, np.int32)).size == 0
        assert list(merge_sort(np.array([3, 1], np.int32))) == [1, 3]

    def test_base_run_length(self, rng):
        values = rng.integers(0, 100, size=333).astype(np.int32)
        for base in (1, 2, 7, 64):
            assert np.array_equal(merge_sort(values, base=base),
                                  np.sort(values))

    def test_rejects_2d(self):
        with pytest.raises(SortError):
            merge_sort(np.zeros((3, 3), np.int32))
