"""End-to-end tests of the self-healing sort supervisor.

Fault times are placed as fractions of a clean supervised run's
duration (measured once per module), so the scenarios keep hitting the
intended phases if calibration shifts.
"""

import numpy as np
import pytest

from repro.errors import SortError
from repro.faults.events import GpuFail, StragglerGpu
from repro.faults.plan import FaultPlan
from repro.hw import dgx_a100
from repro.recovery import SortSupervisor, SupervisorConfig
from repro.runtime import Machine

N = 32_000
SCALE = 2.0e9 / N


def _data() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 2**31, N, dtype=np.int64)


def _machine(plan=None) -> Machine:
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    if plan is not None:
        machine.install_faults(plan)
    return machine


@pytest.fixture(scope="module")
def clean_p2p():
    return SortSupervisor(_machine()).sort(_data(), algorithm="p2p")


@pytest.fixture(scope="module")
def clean_het():
    return SortSupervisor(_machine()).sort(_data(), algorithm="het")


class TestCleanRuns:
    def test_p2p_sorts_and_checkpoints(self, clean_p2p):
        result = clean_p2p
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.algorithm == "supervised-p2p"
        assert not result.degraded
        assert result.replans == 0
        assert result.checkpoints >= 2
        assert result.completed_phases == (
            "Partition", "LocalSort", "Exchange", "Gather")

    def test_het_sorts_and_checkpoints(self, clean_het):
        result = clean_het
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.algorithm == "supervised-het"
        assert not result.degraded
        assert result.checkpoints >= 1
        assert result.completed_phases == ("Pipeline", "Merge")

    def test_empty_fault_plan_is_identical_to_no_plan(self, clean_p2p):
        faulted = SortSupervisor(_machine(FaultPlan.empty())).sort(
            _data(), algorithm="p2p")
        assert faulted.duration == clean_p2p.duration
        assert np.array_equal(faulted.output, clean_p2p.output)

    def test_supervised_run_is_deterministic(self, clean_p2p):
        again = SortSupervisor(_machine()).sort(_data(), algorithm="p2p")
        assert again.duration == clean_p2p.duration
        assert np.array_equal(again.output, clean_p2p.output)


class TestReplanning:
    def test_gpu_killed_mid_exchange_replans_and_sorts(self, clean_p2p):
        """The acceptance scenario: one GPU dies mid-exchange; the run
        completes on the survivors, element-identical, with a recorded
        replan."""
        at = 0.7 * clean_p2p.duration  # exchange phase
        plan = FaultPlan(events=(GpuFail(at=at, gpu=5),))
        result = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="p2p")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.degraded
        assert result.replans >= 1
        assert 5 in result.excluded_gpus
        assert 5 not in result.gpu_ids
        assert len(result.gpu_ids) == 4  # pow2 prefix of 7 survivors

    def test_replan_restores_from_sorted_checkpoint(self, clean_p2p):
        at = 0.55 * clean_p2p.duration  # after the LocalSort checkpoint
        plan = FaultPlan(events=(GpuFail(at=at, gpu=5),))
        result = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="p2p")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.replans == 1
        assert result.checkpoints_restored >= 1

    def test_replan_without_checkpoints_restarts_from_source(self,
                                                             clean_p2p):
        at = 0.7 * clean_p2p.duration
        plan = FaultPlan(events=(GpuFail(at=at, gpu=5),))
        config = SupervisorConfig(checkpoint_sorted_chunks=False,
                                  checkpoint_merged_chunks=False)
        result = SortSupervisor(_machine(plan), config).sort(
            _data(), algorithm="p2p")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.checkpoints_restored == 0

    def test_het_gpu_killed_mid_pipeline_replans(self, clean_het):
        at = 0.4 * clean_het.duration
        plan = FaultPlan(events=(GpuFail(at=at, gpu=2),))
        result = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="het")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.replans >= 1
        assert 2 not in result.gpu_ids

    def test_early_kill_replans_from_scratch(self, clean_p2p):
        at = 0.1 * clean_p2p.duration  # partition phase
        plan = FaultPlan(events=(GpuFail(at=at, gpu=3),))
        result = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="p2p")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.replans >= 1


class TestSpeculation:
    def test_mid_run_straggler_loses_to_a_backup(self, clean_p2p):
        plan = FaultPlan(events=(StragglerGpu(
            at=0.15 * clean_p2p.duration, gpu=3, duration=100.0,
            slowdown=30.0),))
        result = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="p2p")
        assert np.array_equal(result.output, np.sort(_data()))
        assert result.speculations == 1
        assert result.speculative_wins == 1
        assert result.degraded

    def test_disabling_speculation_waits_out_the_straggler(self,
                                                           clean_p2p):
        plan = FaultPlan(events=(StragglerGpu(
            at=0.15 * clean_p2p.duration, gpu=3, duration=100.0,
            slowdown=30.0),))
        with_spec = SortSupervisor(_machine(plan)).sort(
            _data(), algorithm="p2p")
        without = SortSupervisor(
            _machine(plan), SupervisorConfig(speculation=False)).sort(
            _data(), algorithm="p2p")
        assert without.speculations == 0
        assert np.array_equal(without.output, np.sort(_data()))
        assert without.duration > with_spec.duration


class TestDeadline:
    def test_deadline_mid_run_returns_typed_partial(self, clean_p2p):
        deadline = 0.5 * clean_p2p.duration
        result = SortSupervisor(
            _machine(), SupervisorConfig(deadline_s=deadline)).sort(
            _data(), algorithm="p2p")
        assert result.deadline_exceeded
        assert result.output is None
        assert result.duration == pytest.approx(deadline)
        assert "Partition" in result.completed_phases
        assert "Gather" not in result.completed_phases

    def test_generous_deadline_completes_normally(self, clean_p2p):
        result = SortSupervisor(
            _machine(),
            SupervisorConfig(deadline_s=10 * clean_p2p.duration)).sort(
            _data(), algorithm="p2p")
        assert not result.deadline_exceeded
        assert np.array_equal(result.output, np.sort(_data()))


class TestErrors:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SortError, match="rp"):
            SortSupervisor(_machine()).sort(_data(), algorithm="rp")

    def test_empty_input_rejected(self):
        with pytest.raises(SortError, match="empty"):
            SortSupervisor(_machine()).sort(
                np.array([], dtype=np.int64), algorithm="p2p")

    def test_duplicate_gpu_ids_rejected(self):
        with pytest.raises(SortError, match="duplicate"):
            SortSupervisor(_machine()).sort(
                _data(), algorithm="p2p", gpu_ids=(0, 0, 1, 2))
