"""Unit tests of the TaskGroup nursery on a bare environment."""

import pytest

from repro.errors import DeadlineExceededError
from repro.recovery import TaskGroup
from repro.sim.engine import Environment


def _worker(env, delay, result=None, fail=None, log=None):
    yield env.timeout(delay)
    if fail is not None:
        raise fail
    if log is not None:
        log.append(result)
    return result


class TestCompletion:
    def test_results_recorded_by_name(self):
        env = Environment()
        group = TaskGroup(env)

        def body(group):
            group.spawn(_worker(env, 0.1, result="a"), name="a")
            group.spawn(_worker(env, 0.2, result="b"), name="b")
            yield from ()

        env.process(group.run(body(group)))
        env.run()
        assert group.results["a"] == "a"
        assert group.results["b"] == "b"
        assert group.failure is None
        assert env.now == pytest.approx(0.2)

    def test_tasks_spawned_mid_phase_are_awaited(self):
        env = Environment()
        group = TaskGroup(env)
        log = []

        def body(group):
            yield env.timeout(0.1)
            group.spawn(_worker(env, 0.5, result="late", log=log),
                        name="late")

        env.process(group.run(body(group)))
        env.run()
        assert log == ["late"]
        assert env.now == pytest.approx(0.6)


class TestFailure:
    def test_first_failure_cancels_survivors(self):
        env = Environment()
        group = TaskGroup(env)
        log = []

        def body(group):
            group.spawn(_worker(env, 10.0, result="slow", log=log),
                        name="slow")
            group.spawn(_worker(env, 0.1, fail=ValueError("boom")),
                        name="bad")
            yield from ()

        env.process(group.run(body(group)))
        with pytest.raises(ValueError, match="boom"):
            env.run()
        # The slow task was interrupted, not run to completion.
        assert log == []
        assert env.now < 1.0
        assert isinstance(group.failure, ValueError)

    def test_note_failure_first_wins(self):
        env = Environment()
        group = TaskGroup(env)
        first, second = ValueError("first"), KeyError("second")
        group.note_failure(first)
        group.note_failure(second)
        assert group.failure is first


class TestCancellation:
    def test_cancelled_group_blocks_unstarted_tasks(self):
        env = Environment()
        group = TaskGroup(env)
        log = []
        group.cancel()
        group.spawn(_worker(env, 0.0, result="x", log=log), name="x")
        env.run()
        assert log == []

    def test_interrupt_task_sends_at_most_once(self):
        env = Environment()
        group = TaskGroup(env)
        proc = group.spawn(_worker(env, 10.0), name="w")
        env.run(until=0.1)
        assert group.interrupt_task(proc) is True
        assert group.interrupt_task(proc) is False
        env.run()
        assert not proc.is_alive


class TestDeadline:
    def test_deadline_raises_typed_error_at_the_deadline(self):
        env = Environment()
        group = TaskGroup(env, name="Work")

        def body(group):
            group.spawn(_worker(env, 10.0), name="slow")
            yield from ()

        deadline = env.timeout(1.0)
        env.process(group.run(body(group), deadline=deadline))
        with pytest.raises(DeadlineExceededError, match="Work"):
            env.run()
        assert env.now == pytest.approx(1.0)

    def test_generous_deadline_does_not_fire(self):
        env = Environment()
        group = TaskGroup(env)

        def body(group):
            group.spawn(_worker(env, 0.2, result="done"), name="t")
            yield from ()

        deadline = env.timeout(100.0)
        env.process(group.run(body(group), deadline=deadline))
        env.run(until=0.5)
        assert group.results["t"] == "done"
        assert group.failure is None
