"""Survivor-set edge cases: one healthy GPU left, and none.

Every sort — plain P2P/HET/RP and the supervised paths — must keep
working on a single survivor and fail with a clean typed
:class:`~repro.errors.SortError` when every GPU is gone, instead of
crashing deep inside the run.
"""

import numpy as np
import pytest

from repro.errors import SortError
from repro.faults.events import GpuFail
from repro.faults.plan import FaultPlan
from repro.hw import dgx_a100
from repro.recovery import SortSupervisor
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort, rp_sort

N = 16_000
SCALE = 2.0e9 / N

#: All GPUs but gpu0 hard-failed before the sort starts.
SEVEN_DOWN = tuple(GpuFail(at=0.0, gpu=gpu) for gpu in range(1, 8))
#: Every GPU hard-failed before the sort starts.
ALL_DOWN = tuple(GpuFail(at=0.0, gpu=gpu) for gpu in range(8))

PLAIN_SORTS = {"p2p": p2p_sort, "het": het_sort, "rp": rp_sort}


def _data() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.integers(0, 2**31, N, dtype=np.int64)


def _machine(events) -> Machine:
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    machine.install_faults(FaultPlan(events=events))
    return machine


class TestOneSurvivor:
    @pytest.mark.parametrize("algorithm", sorted(PLAIN_SORTS))
    def test_plain_sort_runs_on_the_last_gpu(self, algorithm):
        data = _data()
        result = PLAIN_SORTS[algorithm](_machine(SEVEN_DOWN), data)
        assert result.gpu_ids == (0,)
        assert result.degraded
        assert np.array_equal(result.output, np.sort(data))

    @pytest.mark.parametrize("algorithm", ["p2p", "het"])
    def test_supervised_sort_runs_on_the_last_gpu(self, algorithm):
        data = _data()
        result = SortSupervisor(_machine(SEVEN_DOWN)).sort(
            data, algorithm=algorithm)
        assert result.gpu_ids == (0,)
        assert result.excluded_gpus == tuple(range(1, 8))
        assert np.array_equal(result.output, np.sort(data))


class TestNoSurvivors:
    @pytest.mark.parametrize("algorithm", sorted(PLAIN_SORTS))
    def test_plain_sort_fails_typed(self, algorithm):
        with pytest.raises(SortError, match="no healthy GPUs"):
            PLAIN_SORTS[algorithm](_machine(ALL_DOWN), _data())

    @pytest.mark.parametrize("algorithm", ["p2p", "het"])
    def test_supervised_sort_fails_typed(self, algorithm):
        with pytest.raises(SortError, match="no healthy GPUs"):
            SortSupervisor(_machine(ALL_DOWN)).sort(
                _data(), algorithm=algorithm)
