"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import delta_d22x, dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sim.engine import Environment
from repro.sim.flows import FlowNetwork


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def net(env) -> FlowNetwork:
    """A fresh flow network."""
    return FlowNetwork(env)


@pytest.fixture
def ac922() -> Machine:
    """A functional-mode IBM AC922 machine."""
    return Machine(ibm_ac922(), scale=1)


@pytest.fixture
def delta() -> Machine:
    """A functional-mode DELTA D22x machine."""
    return Machine(delta_d22x(), scale=1)


@pytest.fixture
def dgx() -> Machine:
    """A functional-mode DGX A100 machine."""
    return Machine(dgx_a100(), scale=1)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)
