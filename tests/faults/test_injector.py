"""Unit tests of the fault injector's mechanics.

Each test drives one fault kind against a small real workload on a
scaled DGX A100 machine and checks both the effect during the window
and the exact restoration after it.
"""

import numpy as np
import pytest

from repro.errors import RuntimeApiError
from repro.faults import FaultPlan
from repro.faults.events import (
    CopyEngineStall,
    GpuFail,
    LinkDegradation,
    LinkDown,
    StragglerGpu,
)
from repro.sim.engine import SimulationError
from repro.faults.injector import FaultRecord
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span

SCALE = 1e6  # 8 KB physical -> 8 GB logical: copies take ~0.3 sim-s


def _machine(plan=None) -> Machine:
    machine = Machine(dgx_a100(), scale=SCALE)
    if plan is not None:
        machine.install_faults(plan)
    return machine


def _htod(machine: Machine, gpu: int = 0, n: int = 1000) -> float:
    """One HtoD copy; returns its simulated duration."""
    device = machine.device(gpu)
    host = machine.host_buffer(np.arange(n, dtype=np.int64))
    dev = device.alloc(n, np.int64, label="t")
    start = machine.env.now

    def run():
        yield from copy_async(machine, span(dev), span(host))

    machine.run(run())
    assert np.array_equal(dev.data, host.data)
    return machine.env.now - start


def _kernel(machine: Machine, gpu: int = 0, n: int = 1000) -> float:
    """One on-device sort; returns its simulated duration."""
    device = machine.device(gpu)
    buf = device.alloc(n, np.int32, label="k")
    buf.data[:] = np.arange(n, dtype=np.int32)[::-1]
    start = machine.env.now

    def run():
        yield from sort_on_device(machine, span(buf))

    machine.run(run())
    return machine.env.now - start


class TestInstall:
    def test_unknown_resource_rejected_at_install(self):
        plan = FaultPlan(events=(
            LinkDown(at=0.0, resource="no_such_link", duration=1.0),))
        with pytest.raises(SimulationError, match="no_such_link"):
            _machine(plan)

    def test_unknown_gpu_rejected_at_install(self):
        plan = FaultPlan(events=(
            StragglerGpu(at=0.0, gpu=99, duration=1.0, slowdown=2.0),))
        with pytest.raises(SimulationError, match="99"):
            _machine(plan)

    def test_negative_gpu_rejected_at_plan_construction(self):
        with pytest.raises(SimulationError, match="-1"):
            FaultPlan(events=(GpuFail(at=0.0, gpu=-1),))

    def test_double_install_rejected(self):
        machine = _machine(FaultPlan.empty())
        with pytest.raises(RuntimeApiError):
            machine.install_faults(FaultPlan.empty())


class TestDegradation:
    def test_degradation_slows_transfer(self):
        clean = _htod(_machine())
        plan = FaultPlan(events=(LinkDegradation(
            at=0.0, resource="pcie4_uplink_pcie_sw0", duration=100.0,
            factor=0.5),))
        faulted = _htod(_machine(plan))
        assert faulted > clean

    def test_factor_restored_exactly_after_window(self):
        plan = FaultPlan(events=(LinkDegradation(
            at=0.0, resource="pcie4_uplink_pcie_sw0", duration=0.05,
            factor=0.3),))
        machine = _machine(plan)
        injector = machine.faults
        machine.env.run()  # drain the fault driver
        resource = injector._resource("pcie4_uplink_pcie_sw0")
        assert resource.fault_factor == 1.0
        (record,) = injector.timeline
        assert record.kind == "degradation"
        assert record.end == 0.05
        spans = [s for s in machine.trace.spans
                 if s.phase == "Fault:degradation"]
        assert len(spans) == 1


class TestEngineStall:
    def test_stall_delays_copy_by_window(self):
        clean = _htod(_machine())
        stall = 0.2
        plan = FaultPlan(events=(CopyEngineStall(
            at=0.0, gpu=0, duration=stall, direction="in"),))
        faulted = _htod(_machine(plan))
        assert faulted >= clean + stall - 1e-9

    def test_invalid_direction_rejected(self):
        with pytest.raises(SimulationError, match="sideways"):
            FaultPlan(events=(CopyEngineStall(
                at=0.0, gpu=0, duration=0.1, direction="sideways"),))


class TestStraggler:
    def test_straggler_slows_kernel(self):
        clean = _kernel(_machine())
        plan = FaultPlan(events=(StragglerGpu(
            at=0.0, gpu=0, duration=100.0, slowdown=2.0),))
        faulted = _kernel(_machine(plan))
        assert faulted > 1.5 * clean

    def test_slowdown_restored_exactly_after_window(self):
        plan = FaultPlan(events=(StragglerGpu(
            at=0.0, gpu=0, duration=0.01, slowdown=3.7),))
        machine = _machine(plan)
        machine.env.run()
        assert machine.device(0).compute_slowdown == 1.0
        memory = machine.spec.topology.node("gpu0").memory
        assert memory.fault_factor == 1.0

    def test_straggler_factor_query(self):
        plan = FaultPlan(events=(StragglerGpu(
            at=0.0, gpu=3, duration=5.0, slowdown=2.5),))
        machine = _machine(plan)
        assert machine.faults.straggler_factor(3) == 2.5
        assert machine.faults.straggler_factor(0) == 1.0


class TestLinkDown:
    def test_down_window_opens_and_restores(self):
        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu2", duration=0.3),))
        machine = _machine(plan)
        injector = machine.faults
        seen = {}

        def probe():
            yield machine.env.timeout(0.1)
            seen["mid"] = dict(injector.down_ids)
            rid = next(iter(injector.down_ids))
            yield injector.restored_event(rid)
            seen["restored_at"] = machine.env.now

        machine.run(probe())
        assert len(seen["mid"]) == 1
        assert seen["restored_at"] == 0.3
        assert not injector.down_ids

    def test_restored_event_for_healthy_resource_fires_immediately(self):
        machine = _machine(FaultPlan.empty())
        event = machine.faults.restored_event(12345)
        assert event.triggered


class TestDowntime:
    def test_downtime_is_union_not_sum(self):
        machine = _machine(FaultPlan.empty())
        injector = machine.faults
        injector.timeline.append(FaultRecord("a", "x", 1.0, 3.0))
        injector.timeline.append(FaultRecord("b", "y", 2.0, 4.0))
        injector.timeline.append(FaultRecord("c", "z", 10.0, None))
        assert injector.downtime_between(0.0, 5.0) == pytest.approx(3.0)
        # The open-ended window extends to the end of the interval.
        assert injector.downtime_between(0.0, 12.0) == pytest.approx(5.0)
        assert injector.downtime_between(4.0, 9.0) == 0.0
