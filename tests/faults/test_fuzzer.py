"""The chaos fuzzer: 200 seeded plans against real sorts.

Every case must either produce output element-identical to ``np.sort``
or fail with a typed error; any untyped crash or wrong output is
shrunk to a minimal failing plan and printed.  A fixed-seed smoke
subset runs unmarked (CI / tier-1); the full sweep carries the
``chaos`` marker.
"""

import numpy as np
import pytest

from repro.faults.events import (
    GpuFail,
    LinkDown,
    LinkFlap,
    NodeDown,
    SwitchDown,
    TransientTransfer,
)
from repro.faults.fuzzer import (
    ChaosCase,
    case_for_cluster_seed,
    case_for_seed,
    describe_case,
    run_case,
    shrink,
)
from repro.faults.plan import FaultPlan

SMOKE_SEEDS = (0, 1, 9, 23, 42, 77, 101, 137)
FULL_SEEDS = tuple(seed for seed in range(200) if seed not in SMOKE_SEEDS)
CLUSTER_SMOKE_SEEDS = (3, 27, 31, 36, 64, 78)
CLUSTER_FULL_SEEDS = tuple(seed for seed in range(120)
                           if seed not in CLUSTER_SMOKE_SEEDS)


def _check(seed: int) -> None:
    case = case_for_seed(seed)
    outcome = run_case(case)
    if outcome.failed:
        minimal = shrink(case)
        pytest.fail(
            f"chaos seed {seed} {outcome.status}: {outcome.detail}\n"
            f"minimal failing case:\n{describe_case(minimal)}")


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_chaos_smoke(seed):
    _check(seed)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_chaos_full(seed):
    _check(seed)


def _check_cluster(seed: int) -> None:
    case = case_for_cluster_seed(seed)
    outcome = run_case(case)
    if outcome.failed:
        minimal = shrink(case)
        pytest.fail(
            f"cluster chaos seed {seed} {outcome.status}: "
            f"{outcome.detail}\n"
            f"minimal failing case:\n{describe_case(minimal)}")


# Seeds 27, 31, 36 and 78 historically escaped with bare
# NodeFaultError (simultaneous flow deaths under one all_of crashed
# the event loop before the recovery driver saw them) — they stay in
# the smoke subset as regression canaries.
@pytest.mark.parametrize("seed", CLUSTER_SMOKE_SEEDS)
def test_cluster_chaos_smoke(seed):
    _check_cluster(seed)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CLUSTER_FULL_SEEDS)
def test_cluster_chaos_full(seed):
    _check_cluster(seed)


class TestCaseDerivation:
    def test_same_seed_same_case(self):
        assert case_for_seed(13) == case_for_seed(13)

    def test_cases_vary_across_seeds(self):
        cases = [case_for_seed(seed) for seed in range(30)]
        assert len({case.algorithm for case in cases}) > 1
        assert {case.supervised for case in cases} == {True, False}
        assert len({case.plan for case in cases}) > 1

    def test_outcome_classification_is_typed(self):
        outcome = run_case(case_for_seed(0))
        assert outcome.status in ("ok", "typed", "crash", "mismatch")
        assert outcome.failed == (outcome.status in ("crash", "mismatch"))

    def test_same_seed_same_cluster_case(self):
        assert case_for_cluster_seed(13) == case_for_cluster_seed(13)

    def test_cluster_cases_run_hier_on_varied_fabrics(self):
        cases = [case_for_cluster_seed(seed) for seed in range(30)]
        assert all(case.algorithm == "hier" for case in cases)
        assert all(case.nodes == 4 for case in cases)
        assert len({case.fabric for case in cases}) == 3
        kinds = {type(event) for case in cases
                 for event in case.plan.events}
        assert {NodeDown, SwitchDown, LinkFlap} <= kinds

    def test_cluster_describe_names_the_fabric(self):
        text = describe_case(case_for_cluster_seed(2))
        assert "nodes=4" in text
        assert "fabric=" in text


class TestShrinking:
    """Pin the delta-debugger with synthetic failure predicates."""

    def _case(self) -> ChaosCase:
        plan = FaultPlan(
            events=(
                LinkDown(at=0.1, resource="nvswitch_port_gpu2",
                         duration=0.5),
                GpuFail(at=0.3, gpu=3),
                TransientTransfer(at=0.2),
                GpuFail(at=0.4, gpu=5),
            ),
            transient_failure_prob=0.1,
            seed=7,
        )
        return ChaosCase(seed=7, algorithm="p2p", supervised=True,
                         n=10_000, plan=plan)

    def test_shrinks_to_single_culprit_event(self):
        def failing(case: ChaosCase) -> bool:
            return any(isinstance(event, GpuFail) and event.gpu == 3
                       for event in case.plan.events)

        minimal = shrink(self._case(), failing=failing)
        assert minimal.plan.events == (GpuFail(at=0.3, gpu=3),)
        assert minimal.plan.transient_failure_prob == 0.0

    def test_shrink_keeps_interacting_pair(self):
        def failing(case: ChaosCase) -> bool:
            kinds = {type(event) for event in case.plan.events}
            return GpuFail in kinds and LinkDown in kinds

        minimal = shrink(self._case(), failing=failing)
        assert len(minimal.plan.events) == 2
        assert {type(event) for event in minimal.plan.events} == \
            {GpuFail, LinkDown}

    def test_non_failing_case_is_returned_unchanged(self):
        case = self._case()
        assert shrink(case, failing=lambda _: False) == case

    def test_describe_is_a_reproduction_recipe(self):
        text = describe_case(self._case())
        assert "seed=7" in text
        assert "algorithm=p2p" in text
        assert "GpuFail" in text

    def test_shrunken_plan_still_validates(self):
        # Reductions go through FaultPlan's constructor, so a shrunken
        # plan is always installable.
        minimal = shrink(self._case(),
                         failing=lambda c: len(c.plan.events) >= 1)
        assert isinstance(minimal.plan, FaultPlan)
        assert len(minimal.plan.events) == 1


def test_smoke_seed_outputs_are_element_identical():
    """At least one smoke seed must exercise the full-comparison path."""
    hits = 0
    for seed in SMOKE_SEEDS:
        case = case_for_seed(seed)
        outcome = run_case(case)
        if outcome.status == "ok":
            hits += 1
    assert hits >= len(SMOKE_SEEDS) // 2
