"""Tests of the resilient copy path: retries, watchdog, re-routing."""

import numpy as np
import pytest

from repro.errors import CopyTimeoutError, TransientTransferError
from repro.faults import FaultPlan, ResiliencePolicy
from repro.faults.events import LinkDown, TransientTransfer
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span

SCALE = 1e6  # 8 KB physical -> 8 GB logical: copies take ~0.3 sim-s


def _machine(plan=None, policy=None) -> Machine:
    machine = Machine(dgx_a100(), scale=SCALE)
    if plan is not None:
        machine.install_faults(plan)
    if policy is not None:
        machine.resilience = policy
    return machine


def _htod(machine: Machine, gpu: int = 0, n: int = 1000):
    device = machine.device(gpu)
    host = machine.host_buffer(np.arange(n, dtype=np.int64))
    dev = device.alloc(n, np.int64, label="t")

    def run():
        yield from copy_async(machine, span(dev), span(host))

    machine.run(run())
    return host, dev


def _ptop(machine: Machine, src_gpu: int = 0, dst_gpu: int = 2,
          n: int = 1000):
    src_dev = machine.device(src_gpu).alloc(n, np.int64, label="src")
    dst_dev = machine.device(dst_gpu).alloc(n, np.int64, label="dst")
    src_dev.data[:] = np.arange(n, dtype=np.int64)

    def run():
        yield from copy_async(machine, span(dst_dev), span(src_dev))

    machine.run(run())
    return src_dev, dst_dev


class TestTransientRetry:
    def test_injected_transient_is_retried_to_completion(self):
        plan = FaultPlan(events=(TransientTransfer(at=0.1),))
        machine = _machine(plan)
        host, dev = _htod(machine)
        assert np.array_equal(dev.data, host.data)
        assert machine.resilience_stats.retries == 1
        assert machine.net.aborted_flows == 1
        # The kill was recorded on the injector timeline.
        kinds = [r.kind for r in machine.faults.timeline]
        assert kinds == ["transient"]

    def test_retry_exhaustion_raises_and_releases_engines(self):
        plan = FaultPlan(events=(TransientTransfer(at=0.1),))
        machine = _machine(plan, ResiliencePolicy(max_retries=0))
        with pytest.raises(TransientTransferError):
            _htod(machine)
        device = machine.device(0)
        assert device.engine_in.available == device.engine_in.capacity
        assert machine.resilience_stats.retries == 0
        assert len(machine.net.active_flows) == 0

    def test_per_flow_probability_kills_are_seeded(self):
        plan = FaultPlan(transient_failure_prob=0.5, seed=11)
        policy = ResiliencePolicy(max_retries=50, backoff_base_s=1e-4)
        retries = []
        for _ in range(2):
            machine = _machine(plan, policy)
            for _ in range(3):
                _htod(machine)
            retries.append(machine.resilience_stats.retries)
        assert retries[0] == retries[1]
        assert retries[0] > 0

    def test_backoff_spreads_attempts(self):
        policy = ResiliencePolicy(backoff_base_s=0.5, max_retries=1)
        plan = FaultPlan(events=(TransientTransfer(at=0.1),))
        machine = _machine(plan, policy)
        start = machine.env.now
        _htod(machine)
        # One failed attempt + 0.5 s backoff + one full attempt.
        assert machine.env.now - start > 0.5


class TestWatchdog:
    def test_timeout_without_retry_raises(self):
        policy = ResiliencePolicy(copy_timeout_s=0.01,
                                  retry_on_timeout=False)
        machine = _machine(policy=policy)
        with pytest.raises(CopyTimeoutError):
            _htod(machine)
        assert machine.resilience_stats.timeouts == 1
        assert len(machine.net.active_flows) == 0

    def test_timeout_retries_then_exhausts(self):
        policy = ResiliencePolicy(copy_timeout_s=0.01, max_retries=2,
                                  backoff_base_s=1e-4)
        machine = _machine(policy=policy)
        with pytest.raises(CopyTimeoutError):
            _htod(machine)
        assert machine.resilience_stats.timeouts == 3
        assert machine.resilience_stats.retries == 2

    def test_generous_timeout_does_not_fire(self):
        policy = ResiliencePolicy(copy_timeout_s=1000.0)
        machine = _machine(policy=policy)
        host, dev = _htod(machine)
        assert np.array_equal(dev.data, host.data)
        assert machine.resilience_stats.timeouts == 0


class TestReroute:
    def test_copy_detours_around_down_link(self):
        clean_machine = _machine()
        _ptop(clean_machine)
        clean = clean_machine.env.now

        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu2", duration=100.0),))
        machine = _machine(plan)
        src, dst = _ptop(machine)
        assert np.array_equal(dst.data, src.data)
        assert machine.resilience_stats.reroutes == 1
        # The detour is host-staged PCIe: slower than NVSwitch, but it
        # finishes long before the 100 s restoration.
        assert clean < machine.env.now < 100.0

    def test_without_reroute_copy_parks_until_restored(self):
        down = 0.4
        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu2", duration=down),))
        machine = _machine(plan, ResiliencePolicy(reroute=False))
        src, dst = _ptop(machine)
        assert np.array_equal(dst.data, src.data)
        assert machine.resilience_stats.reroutes == 0
        assert machine.resilience_stats.link_wait_s == pytest.approx(down)
        assert machine.env.now > down

    def test_unaffected_route_ignores_down_link(self):
        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu6", duration=100.0),))
        machine = _machine(plan)
        host, dev = _htod(machine)  # cpu0 -> gpu0 never sees the switch
        assert np.array_equal(dev.data, host.data)
        assert machine.resilience_stats.reroutes == 0
        assert machine.resilience_stats.retries == 0


class TestPolicy:
    def test_backoff_schedule(self):
        policy = ResiliencePolicy(backoff_base_s=0.001,
                                  backoff_multiplier=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.001)
        assert policy.backoff_s(3) == pytest.approx(0.004)
        with pytest.raises(ValueError):
            policy.backoff_s(0)
