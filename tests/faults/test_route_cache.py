"""Route-cache invalidation under link faults.

The :class:`~repro.hw.topology.RouteTable` memoizes Dijkstra results;
the fault injector must drop the cache when a link goes down *and*
again when it is restored, so a warmed cache never serves a route that
crosses a dead link (or keeps a detour after the link returns).
"""

import numpy as np

from repro.faults import FaultPlan
from repro.faults.events import LinkDown
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span

SCALE = 1e6  # 8 KB physical -> 8 GB logical: copies take ~0.3 sim-s


def _ptop(machine: Machine, src_gpu: int = 0, dst_gpu: int = 2,
          n: int = 1000):
    src_dev = machine.device(src_gpu).alloc(n, np.int64, label="src")
    dst_dev = machine.device(dst_gpu).alloc(n, np.int64, label="dst")
    src_dev.data[:] = np.arange(n, dtype=np.int64)

    def run():
        yield from copy_async(machine, span(dst_dev), span(src_dev))

    machine.run(run())
    return src_dev, dst_dev


class TestLinkDownThroughWarmCache:
    def test_warmed_cache_still_reroutes_around_down_link(self):
        """Satellite: a LinkDown fault reroutes correctly even though
        the gpu0 -> gpu2 route was already cached before the fault."""
        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu2", duration=0.001),))
        machine = Machine(dgx_a100(), scale=SCALE)
        topo = machine.spec.topology

        # Warm the cache with the clean NVSwitch route *before* the
        # injector is armed.
        clean = topo.route("gpu0", "gpu2")
        assert any(r.name == "nvswitch_port_gpu2"
                   for r, _ in clean.hops)
        assert len(topo.routes) >= 1

        machine.install_faults(plan)
        src, dst = _ptop(machine)
        assert np.array_equal(dst.data, src.data)
        assert machine.resilience_stats.reroutes == 1
        # Window open flushed the warm table; the close edge (during
        # the detour copy) flushed the avoid-set routes cached by the
        # reroute itself.
        assert topo.routes.invalidations >= 2

    def test_route_after_restore_matches_the_pre_fault_route(self):
        brief = 0.001
        plan = FaultPlan(events=(LinkDown(
            at=0.0, resource="nvswitch_port_gpu2", duration=brief),))
        machine = Machine(dgx_a100(), scale=SCALE)
        topo = machine.spec.topology
        before = topo.route("gpu0", "gpu2")
        reference = ([r.name for r, _ in before.hops],
                     before.bottleneck, before.latency_s)

        machine.install_faults(plan)
        src, dst = _ptop(machine)
        assert np.array_equal(dst.data, src.data)
        assert machine.env.now > brief  # the window has closed

        after = topo.route("gpu0", "gpu2")
        assert ([r.name for r, _ in after.hops],
                after.bottleneck, after.latency_s) == reference

    def test_cache_is_reused_across_repeated_copies(self):
        machine = Machine(dgx_a100(), scale=SCALE)
        topo = machine.spec.topology
        _ptop(machine)
        hits = topo.routes.hits
        _ptop(machine)
        assert topo.routes.hits > hits
        assert topo.routes.invalidations == 0
