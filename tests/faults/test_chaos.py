"""Chaos scenarios: degraded-mode sorting end to end.

Two guarantees are pinned here:

* **Zero-cost guard** — a machine with an *empty* fault plan installed
  reproduces the committed goldens bit-exactly: every fault branch is
  gated, so merely enabling the subsystem changes nothing.
* **Seeded chaos** — under a straggler, a guaranteed transient kill and
  a P2P-link-down window, both sorts still produce sorted output, flag
  themselves degraded with nonzero recovery counters, and replay
  bit-identically from the same plan.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data import generate
from repro.faults import FaultPlan
from repro.faults.events import LinkDown, StragglerGpu, TransientTransfer
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort
from repro.sort.het import HetConfig
from tests.sim.capture_golden import CASES

GOLDEN_PATH = Path(__file__).parent.parent / "sim" / "golden_determinism.json"

PHYSICAL = 100_000
BILLIONS = 2.0


def _machine(physical: int = PHYSICAL,
             billions: float = BILLIONS) -> Machine:
    scale = billions * 1e9 / physical
    return Machine(dgx_a100(), scale=scale, fast_functional=True)


def _data(physical: int = PHYSICAL) -> np.ndarray:
    return generate(physical, "uniform", np.int32, seed=42)


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("case", ["p2p-dgx-2b", "het-dgx-2b"])
def test_empty_fault_plan_keeps_runs_bit_identical(case, golden):
    algorithm, physical, billions = CASES[case]
    machine = _machine(physical, billions)
    machine.install_faults(FaultPlan.empty())
    sort = p2p_sort if algorithm == "p2p" else het_sort
    result = sort(machine, _data(physical))
    expected = golden[case]
    assert result.duration == expected["duration"]
    assert result.phase_durations == expected["phases"]
    spans = sorted([s.phase, s.actor, s.start, s.end, s.bytes]
                   for s in machine.trace.spans)
    assert spans == expected["spans"]
    assert result.degraded is False
    assert result.retries == result.reroutes == result.timeouts == 0
    assert result.fault_downtime == 0.0


def _chaos_plan(clean, down_resource: str, straggler_gpu: int) -> FaultPlan:
    """Straggler + one transient kill + one P2P-link-down window,
    timed off the clean run's phase boundaries so each fault actually
    intersects the work it targets."""
    phases = clean.phase_durations
    htod = phases.get("HtoD", clean.duration * 0.1)
    pre_transfer_out = htod + phases.get("Sort", 0.0)
    return FaultPlan(
        events=(
            StragglerGpu(at=0.0, gpu=straggler_gpu,
                         duration=10.0 * clean.duration, slowdown=2.0),
            TransientTransfer(at=0.5 * htod),
            LinkDown(at=0.95 * pre_transfer_out, resource=down_resource,
                     duration=10.0 * clean.duration),
        ),
        seed=99,
    )


def _run_chaos(algorithm: str):
    # Both variants move chunks over the NVSwitch in their merge phase
    # (HET via GPU-merged groups), so a down port forces PCIe detours.
    # A host-side PCIe link has no detour on the DGX — GPUs never
    # forward traffic — so copies would park instead of re-routing.
    if algorithm == "p2p":
        def sort(machine, data):
            return p2p_sort(machine, data)
    else:
        def sort(machine, data):
            return het_sort(machine, data,
                            config=HetConfig(gpu_merge_groups=True))
    clean = sort(_machine(), _data())
    plan = _chaos_plan(clean, "nvswitch_port_gpu2", straggler_gpu=5)
    results = []
    timelines = []
    for _ in range(2):
        machine = _machine()
        machine.install_faults(plan)
        results.append(sort(machine, _data()))
        timelines.append(machine.faults.timeline_keys())
    return clean, results, timelines


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ["p2p", "het"])
def test_chaos_scenario_degrades_gracefully(algorithm):
    clean, (first, second), (timeline_a, timeline_b) = _run_chaos(algorithm)

    # The sort survived the faults and the output is still correct.
    assert np.all(np.diff(first.output) >= 0)
    assert len(first.output) == len(clean.output)

    # Recovery work happened and is reported.
    assert first.degraded is True
    assert first.retries >= 1
    assert first.reroutes >= 1
    assert first.fault_downtime > 0.0
    assert first.duration > clean.duration
    # A 2x straggler stays below the 4x exclusion factor: all GPUs kept.
    assert first.excluded_gpus == ()
    assert first.gpu_ids == clean.gpu_ids
    assert "degraded" in first.summary()

    # Same plan, fresh machine: bit-identical virtual time and timeline.
    assert second.duration == first.duration
    assert second.phase_durations == first.phase_durations
    assert second.retries == first.retries
    assert second.reroutes == first.reroutes
    assert timeline_b == timeline_a


@pytest.mark.chaos
def test_generated_plan_chaos_is_reproducible():
    """FaultPlan.generate -> install -> sort, twice: identical runs."""
    durations = []
    for _ in range(2):
        machine = _machine()
        plan = FaultPlan.generate(machine.spec, seed=4, intensity=2.0,
                                  horizon=0.3)
        machine.install_faults(plan)
        result = het_sort(machine, _data())
        assert np.all(np.diff(result.output) >= 0)
        durations.append(result.duration)
    assert durations[0] == durations[1]
