"""Unit tests of fault plans: validation, ordering, seeded generation."""

import pytest

from repro.faults import (
    FaultPlan,
    LinkDegradation,
    LinkDown,
    StragglerGpu,
    TransientTransfer,
)
from repro.hw import dgx_a100


class TestFaultPlanBasics:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert len(plan) == 0
        assert plan.transient_failure_prob == 0.0

    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            TransientTransfer(at=3.0),
            LinkDown(at=1.0, resource="x", duration=0.5),
            StragglerGpu(at=2.0, gpu=0, duration=1.0, slowdown=2.0),
        ))
        assert [e.at for e in plan.events] == [1.0, 2.0, 3.0]

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_prob=-0.1)

    def test_events_are_immutable(self):
        event = LinkDegradation(at=0.0, resource="x", duration=1.0,
                                factor=0.5)
        with pytest.raises(AttributeError):
            event.factor = 0.1


class TestGenerate:
    def test_same_seed_same_plan(self):
        spec = dgx_a100()
        a = FaultPlan.generate(spec, seed=7, intensity=2.0, horizon=1.5)
        b = FaultPlan.generate(spec, seed=7, intensity=2.0, horizon=1.5)
        assert a == b
        assert a.events == b.events

    def test_different_seeds_differ(self):
        spec = dgx_a100()
        plans = {FaultPlan.generate(spec, seed=s, intensity=2.0).events
                 for s in range(5)}
        assert len(plans) > 1

    def test_zero_intensity_is_empty(self):
        plan = FaultPlan.generate(dgx_a100(), seed=1, intensity=0.0)
        assert len(plan) == 0
        assert plan.transient_failure_prob == 0.0

    def test_events_land_inside_horizon(self):
        horizon = 3.0
        plan = FaultPlan.generate(dgx_a100(), seed=3, intensity=4.0,
                                  horizon=horizon)
        assert len(plan) > 0
        for event in plan.events:
            assert 0.0 <= event.at <= 0.8 * horizon

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(dgx_a100(), seed=1, intensity=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.generate(dgx_a100(), seed=1, horizon=0.0)
