"""Unit tests of fault plans: validation, ordering, seeded generation."""

import pytest

from repro.faults import (
    FaultPlan,
    LinkDegradation,
    LinkDown,
    LinkFlap,
    NodeDown,
    StragglerGpu,
    SwitchDown,
    TransientTransfer,
)
from repro.hw import dgx_a100, make_cluster
from repro.sim.engine import SimulationError


class TestFaultPlanBasics:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert len(plan) == 0
        assert plan.transient_failure_prob == 0.0

    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            TransientTransfer(at=3.0),
            LinkDown(at=1.0, resource="x", duration=0.5),
            StragglerGpu(at=2.0, gpu=0, duration=1.0, slowdown=2.0),
        ))
        assert [e.at for e in plan.events] == [1.0, 2.0, 3.0]

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_prob=-0.1)

    def test_events_are_immutable(self):
        event = LinkDegradation(at=0.0, resource="x", duration=1.0,
                                factor=0.5)
        with pytest.raises(AttributeError):
            event.factor = 0.1


class TestJsonRoundTrip:
    def _plan(self) -> FaultPlan:
        return FaultPlan(events=(
            LinkDegradation(at=0.1, resource="nvlink_0_1", duration=0.2,
                            factor=0.5),
            LinkDown(at=0.3, resource="nvlink_0_1", duration=0.05),
            StragglerGpu(at=0.4, gpu=2, duration=0.3, slowdown=2.5),
            TransientTransfer(at=0.6),
        ), transient_failure_prob=0.05, seed=99)

    def test_round_trip_preserves_the_plan(self):
        plan = self._plan()
        loaded = FaultPlan.from_json(plan.to_json())
        assert loaded == plan
        assert loaded.events == plan.events
        assert loaded.transient_failure_prob \
            == plan.transient_failure_prob
        assert loaded.seed == plan.seed

    def test_generated_plans_round_trip(self):
        plan = FaultPlan.generate(dgx_a100(), seed=5, intensity=3.0,
                                  horizon=2.0)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_plan_round_trips(self):
        loaded = FaultPlan.from_json(FaultPlan.empty().to_json())
        assert len(loaded) == 0
        assert loaded.seed is None

    def test_invalid_json_is_typed(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_json("not json {")

    def test_wrong_shape_is_typed(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_json('["a", "b"]')
        with pytest.raises(SimulationError):
            FaultPlan.from_json('{"seed": 1}')

    def test_unknown_event_kind_is_typed(self):
        text = ('{"events": [{"kind": "MeteorStrike", "at": 0.0}], '
                '"transient_failure_prob": 0.0, "seed": null}')
        with pytest.raises(SimulationError, match="MeteorStrike"):
            FaultPlan.from_json(text)

    def test_malformed_entry_is_typed(self):
        text = ('{"events": [{"kind": "LinkDown", "at": 0.0, '
                '"bogus_field": 1}]}')
        with pytest.raises(SimulationError, match="LinkDown"):
            FaultPlan.from_json(text)

    def test_hand_edited_invalid_window_still_validates(self):
        plan = FaultPlan(events=(
            LinkDown(at=0.3, resource="x", duration=0.05),))
        text = plan.to_json().replace('"duration": 0.05',
                                      '"duration": -1.0')
        with pytest.raises(SimulationError):
            FaultPlan.from_json(text)


class TestClusterEventKinds:
    """Satellite: JSON round-trip + validation of the cluster-tier kinds."""

    def _plan(self) -> FaultPlan:
        return FaultPlan(events=(
            NodeDown(at=0.1, node=2),
            SwitchDown(at=0.2, switch="ft_spine0", duration=0.05),
            SwitchDown(at=0.3, switch=1, duration=0.02),
            LinkFlap(at=0.4, resource="infiniband_n1_nic0_ft_leaf0",
                     cycles=3, down_s=0.01, up_s=0.02),
        ), seed=17)

    def test_cluster_kinds_round_trip(self):
        plan = self._plan()
        loaded = FaultPlan.from_json(plan.to_json())
        assert loaded == plan
        assert loaded.events == plan.events

    def test_cluster_generate_round_trips(self):
        spec = make_cluster("dgx-a100", 4, fabric="rail")
        plan = FaultPlan.generate(spec, seed=9, intensity=2.0,
                                  horizon=0.4)
        assert len(plan) > 0
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_negative_node_rejected(self):
        with pytest.raises(SimulationError, match="invalid node"):
            FaultPlan(events=(NodeDown(at=0.0, node=-1),))

    def test_bad_switch_rejected(self):
        with pytest.raises(SimulationError, match="invalid switch"):
            FaultPlan(events=(SwitchDown(at=0.0, switch="",
                                         duration=0.1),))
        with pytest.raises(SimulationError, match="invalid switch"):
            FaultPlan(events=(SwitchDown(at=0.0, switch=-3,
                                         duration=0.1),))

    def test_zero_cycle_flap_rejected(self):
        with pytest.raises(SimulationError, match="cycle"):
            FaultPlan(events=(LinkFlap(at=0.0, resource="x", cycles=0,
                                       down_s=0.01, up_s=0.01),))

    def test_nonpositive_flap_window_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            FaultPlan(events=(LinkFlap(at=0.0, resource="x", cycles=1,
                                       down_s=0.0, up_s=0.01),))

    def test_hand_edited_flap_still_validates(self):
        plan = FaultPlan(events=(
            LinkFlap(at=0.0, resource="x", cycles=2,
                     down_s=0.01, up_s=0.02),))
        text = plan.to_json().replace('"cycles": 2', '"cycles": 0')
        with pytest.raises(SimulationError, match="cycle"):
            FaultPlan.from_json(text)


class TestGenerate:
    def test_same_seed_same_plan(self):
        spec = dgx_a100()
        a = FaultPlan.generate(spec, seed=7, intensity=2.0, horizon=1.5)
        b = FaultPlan.generate(spec, seed=7, intensity=2.0, horizon=1.5)
        assert a == b
        assert a.events == b.events

    def test_different_seeds_differ(self):
        spec = dgx_a100()
        plans = {FaultPlan.generate(spec, seed=s, intensity=2.0).events
                 for s in range(5)}
        assert len(plans) > 1

    def test_zero_intensity_is_empty(self):
        plan = FaultPlan.generate(dgx_a100(), seed=1, intensity=0.0)
        assert len(plan) == 0
        assert plan.transient_failure_prob == 0.0

    def test_events_land_inside_horizon(self):
        horizon = 3.0
        plan = FaultPlan.generate(dgx_a100(), seed=3, intensity=4.0,
                                  horizon=horizon)
        assert len(plan) > 0
        for event in plan.events:
            assert 0.0 <= event.at <= 0.8 * horizon

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(dgx_a100(), seed=1, intensity=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.generate(dgx_a100(), seed=1, horizon=0.0)
