"""Cluster-tier fault injection: node death, switch outages, flapping.

Covers the injector's expansion of :class:`NodeDown` into a node's
whole fault domain, the **one batched route flush per switch edge**
contract under switch down/up bursts, warmed-cache rerouting around a
dead switch on the redundant fabrics, and the per-link health score
with quarantine hysteresis that keeps flapping links out of new
routes.
"""

import numpy as np
import pytest

from repro.errors import NodeFaultError
from repro.faults import FaultPlan
from repro.faults.events import LinkFlap, NodeDown, SwitchDown
from repro.faults.policy import LinkHealth, ResiliencePolicy
from repro.hw import dgx_a100, make_cluster
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span
from repro.sim.engine import SimulationError

SCALE = 1e6  # 8 KB physical -> 8 GB logical: copies take ~0.3 sim-s


def _cross_copy(machine: Machine, src_gpu: int, dst_gpu: int,
                n: int = 1000):
    src = machine.device(src_gpu).alloc(n, np.int64, label="src")
    dst = machine.device(dst_gpu).alloc(n, np.int64, label="dst")
    src.data[:] = np.arange(n, dtype=np.int64)

    def run():
        yield from copy_async(machine, span(dst), span(src))

    machine.run(run())
    return src, dst


class TestNodeDownExpansion:
    def test_node_down_fails_every_gpu_and_nic_of_the_node(self):
        machine = Machine(make_cluster("dgx-a100", 2), scale=SCALE)
        machine.install_faults(FaultPlan(events=(
            NodeDown(at=0.0, node=1),)))

        def run():
            yield machine.env.timeout(0.001)

        machine.run(run())
        injector = machine.faults
        assert injector.failed_node_ids() == {1}
        assert set(machine.spec.gpu_ids_of_node(1)) \
            <= injector.failed_gpu_ids()
        # Every NIC uplink of the node is permanently down.
        for name in machine.spec.node_nic_links(1):
            resource = injector._by_name[name]
            assert id(resource) in injector.down_ids

    def test_check_host_raises_for_a_dead_node(self):
        spec = make_cluster("dgx-a100", 2)
        machine = Machine(spec, scale=SCALE)
        machine.install_faults(FaultPlan(events=(
            NodeDown(at=0.0, node=0),)))

        def run():
            yield machine.env.timeout(0.001)

        machine.run(run())
        with pytest.raises(NodeFaultError):
            machine.faults.check_host(spec.node_numa(0))
        machine.faults.check_host(spec.node_numa(1))  # survivor is fine

    def test_node_down_needs_a_cluster(self):
        machine = Machine(dgx_a100())
        with pytest.raises(SimulationError, match="ClusterSpec"):
            machine.install_faults(FaultPlan(events=(
                NodeDown(at=0.0, node=0),)))

    def test_unknown_node_rejected_at_install(self):
        machine = Machine(make_cluster("dgx-a100", 2))
        with pytest.raises(SimulationError, match="unknown node"):
            machine.install_faults(FaultPlan(events=(
                NodeDown(at=0.0, node=7),)))

    def test_unknown_switch_rejected_at_install(self):
        machine = Machine(make_cluster("dgx-a100", 4))
        with pytest.raises(SimulationError, match="ft_spine9"):
            machine.install_faults(FaultPlan(events=(
                SwitchDown(at=0.0, switch="ft_spine9", duration=0.1),)))

    def test_switch_down_needs_a_fabric(self):
        machine = Machine(dgx_a100())
        with pytest.raises(SimulationError, match="no fabric switches"):
            machine.install_faults(FaultPlan(events=(
                SwitchDown(at=0.0, switch=0, duration=0.1),)))


class TestBatchedRouteFlush:
    """Satellite: one route-table flush per switch *edge*, not per link."""

    def test_switch_down_flushes_once_per_edge(self):
        # rail0 on a 4-node rail fabric has four attached NIC links;
        # taking the switch down must flush the warmed table exactly
        # once on the down edge and once on restore.
        machine = Machine(make_cluster("dgx-a100", 4, fabric="rail"),
                          scale=SCALE)
        topo = machine.spec.topology
        topo.route("gpu0", "gpu8")  # warm (flushes are no-ops when empty)
        machine.install_faults(FaultPlan(events=(
            SwitchDown(at=0.0, switch="rail0", duration=0.001),)))

        def run():
            # Re-warm mid-window so the restore-edge flush has a
            # non-empty table to count against (flushing an empty
            # table is a no-op).
            yield machine.env.timeout(0.0005)
            topo.route("gpu0", "gpu16")
            yield machine.env.timeout(0.01)

        machine.run(run())
        assert topo.routes.invalidations == 2

    def test_switch_burst_flushes_twice_per_window(self):
        machine = Machine(make_cluster("dgx-a100", 4, fabric="rail"),
                          scale=SCALE)
        topo = machine.spec.topology
        topo.route("gpu0", "gpu8")
        machine.install_faults(FaultPlan(events=tuple(
            SwitchDown(at=0.01 * k, switch="rail0", duration=0.002)
            for k in range(3))))

        def run():
            # Keep the table warm across the burst: re-route once
            # inside every down window and once after every restore,
            # so each of the six edges flushes a non-empty table.
            for k in range(3):
                yield machine.env.timeout(0.01 * k + 0.001
                                          - machine.env.now)
                topo.route("gpu0", "gpu16")
                yield machine.env.timeout(0.004)
                topo.route("gpu0", "gpu16")
            yield machine.env.timeout(0.1 - machine.env.now)

        machine.run(run())
        assert topo.routes.invalidations == 6

    def test_node_down_flushes_once_for_all_nic_links(self):
        machine = Machine(make_cluster("dgx-a100", 2, fabric="rail"),
                          scale=SCALE)
        topo = machine.spec.topology
        topo.route("gpu0", "gpu8")
        assert len(machine.spec.node_nic_links(1)) > 1
        machine.install_faults(FaultPlan(events=(
            NodeDown(at=0.0, node=1),)))

        def run():
            yield machine.env.timeout(0.001)

        machine.run(run())
        assert topo.routes.invalidations == 1


class TestSwitchDownReroute:
    """Warmed-cache rerouting around a dead switch on every fabric."""

    @pytest.mark.parametrize("fabric,nodes,switch,src,dst", [
        # Fat-tree: spine0 dies; the leaf0 -> leaf1 route detours
        # through spine1.
        ("fat-tree", 8, "ft_spine0", 0, 32),
        # Rail: rail0 dies; traffic shifts to the nodes' rail1 NICs.
        ("rail", 4, "rail0", 0, 8),
    ])
    def test_redundant_fabrics_reroute(self, fabric, nodes, switch,
                                       src, dst):
        machine = Machine(make_cluster("dgx-a100", nodes, fabric=fabric),
                          scale=SCALE)
        topo = machine.spec.topology
        clean = topo.route(f"gpu{src}", f"gpu{dst}")
        assert any(switch in r.name for r, _ in clean.hops)
        machine.install_faults(FaultPlan(events=(
            SwitchDown(at=0.0, switch=switch, duration=0.001),)))
        a, b = _cross_copy(machine, src, dst)
        assert np.array_equal(b.data, a.data)
        assert machine.resilience_stats.reroutes >= 1
        assert topo.routes.invalidations == 2

    def test_dragonfly_router_outage_is_waited_out(self):
        # A dragonfly node hangs off exactly one router, so a dead
        # router strands its nodes: no redundant path exists and the
        # copy must wait for the restore edge instead of rerouting.
        machine = Machine(make_cluster("dgx-a100", 16,
                                       fabric="dragonfly"), scale=SCALE)
        topo = machine.spec.topology
        clean = topo.route("gpu0", "gpu32")
        assert any("dfly_r1" in r.name for r, _ in clean.hops)
        machine.install_faults(FaultPlan(events=(
            SwitchDown(at=0.0, switch="dfly_r1", duration=0.001),)))
        a, b = _cross_copy(machine, 0, 32)
        assert np.array_equal(b.data, a.data)
        assert machine.resilience_stats.reroutes == 0
        assert machine.env.now > 0.001  # the outage window was waited out


class TestLinkHealth:
    """Unit tests of the health score + quarantine hysteresis."""

    def _policy(self):
        return ResiliencePolicy()

    def test_score_decays_per_down_edge(self):
        health = LinkHealth(self._policy())
        assert health.current(0.0) == 1.0
        health.record_down(0.0)
        assert health.current(0.0) == pytest.approx(0.5)
        health.record_up(0.1)
        health.record_down(0.1)
        assert health.current(0.1) == pytest.approx(0.25, abs=0.03)
        assert health.down_edges == 2

    def test_quarantine_trips_below_low_watermark(self):
        health = LinkHealth(self._policy())
        for _ in range(3):  # 1.0 -> 0.5 -> 0.25 -> 0.125 < 0.2
            health.record_down(0.0)
            health.record_up(0.0)
        assert health.is_quarantined(0.0)

    def test_hysteresis_holds_through_brief_up_windows(self):
        policy = self._policy()
        health = LinkHealth(policy)
        for _ in range(3):
            health.record_down(0.0)
            health.record_up(0.0)
        # Linear recovery: released only once the score clears the
        # *higher* restore watermark, not the quarantine one.
        trip = (policy.health_quarantine_below - health.current(0.0)) \
            / policy.health_recovery_per_s
        assert health.is_quarantined(trip + 0.01)
        release = (policy.health_restore_above - 0.125) \
            / policy.health_recovery_per_s
        assert not health.is_quarantined(release + 0.01)
        assert health.current(1e9) == 1.0  # capped

    def test_flapping_link_is_quarantined_by_the_injector(self):
        machine = Machine(make_cluster("dgx-a100", 2), scale=SCALE)
        link = machine.spec.node_nic_links(1)[0]
        machine.install_faults(FaultPlan(events=(
            LinkFlap(at=0.0, resource=link, cycles=4,
                     down_s=0.0005, up_s=0.0005),)))

        def run():
            yield machine.env.timeout(0.004)

        machine.run(run())
        injector = machine.faults
        rid = id(injector._by_name[link])
        assert injector.link_health[rid].down_edges == 4
        assert rid in injector.quarantined_ids()

    def test_backoff_jitter_is_seeded_and_bounded(self):
        plans = [FaultPlan(events=(), seed=3), FaultPlan(events=(), seed=3)]
        draws = []
        for plan in plans:
            machine = Machine(make_cluster("dgx-a100", 2))
            machine.install_faults(plan)
            draws.append([machine.faults.backoff_jitter_draw()
                          for _ in range(8)])
        assert draws[0] == draws[1]  # same seed, same stream
        assert all(0.0 <= d <= 1.0 for d in draws[0])
        assert len(set(draws[0])) > 1
