"""Unit tests of GPU-relayed multi-hop P2P copies."""

import numpy as np
import pytest

from repro.errors import RuntimeApiError
from repro.hw import delta_d22x, dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.runtime.memcpy import span
from repro.runtime.multihop import (
    copy_multihop,
    multihop_rate_estimate,
    relay_gpu_ids,
)


class TestRelayDiscovery:
    def test_delta_relays_exist_for_unlinked_pairs(self, delta):
        # 0 -> 3 goes via GPU 2 (two 48.5 GB/s hops beat 0-1-3's
        # 24 GB/s second hop).
        assert relay_gpu_ids(delta, 0, 3) == [2]
        assert relay_gpu_ids(delta, 1, 2) == [0]

    def test_direct_pairs_need_no_relay(self, delta, dgx):
        assert relay_gpu_ids(delta, 0, 1) is None
        assert relay_gpu_ids(dgx, 0, 7) is None  # NVSwitch is direct

    def test_ac922_has_no_relay_path(self, ac922):
        # GPUs 0/1 and 2/3 form separate NVLink islands.
        assert relay_gpu_ids(ac922, 0, 2) is None

    def test_rate_estimate_is_bottleneck_hop(self, delta):
        from repro.units import gb
        assert multihop_rate_estimate(delta, 0, 3) == pytest.approx(
            gb(48.5))

    def test_rate_estimate_none_without_path(self, ac922):
        assert multihop_rate_estimate(ac922, 0, 2) is None


class TestMultihopCopy:
    def test_payload_delivered_through_relay(self, delta, rng):
        src = delta.device(0).alloc(2000, np.int32)
        src.data[:] = rng.integers(0, 1 << 30, size=2000)
        dst = delta.device(3).alloc(2000, np.int32)

        def run():
            yield from copy_multihop(delta, span(dst), span(src),
                                     relays=[1])

        delta.run(run())
        assert np.array_equal(dst.data, src.data)

    def test_two_relays(self, delta, rng):
        src = delta.device(1).alloc(500, np.int32)
        src.data[:] = rng.integers(0, 100, size=500)
        dst = delta.device(2).alloc(500, np.int32)

        def run():
            yield from copy_multihop(delta, span(dst), span(src),
                                     relays=[0, 3], blocks=4)

        delta.run(run())
        assert np.array_equal(dst.data, src.data)

    def test_empty_relays_falls_back_to_direct(self, delta, rng):
        src = delta.device(0).alloc(100, np.int32)
        src.data[:] = rng.integers(0, 100, size=100)
        dst = delta.device(1).alloc(100, np.int32)

        def run():
            yield from copy_multihop(delta, span(dst), span(src),
                                     relays=[])

        delta.run(run())
        assert np.array_equal(dst.data, src.data)

    def test_relayed_beats_host_staged(self, rng):
        from repro.runtime.memcpy import copy_async

        def timed(use_relay: bool) -> float:
            machine = Machine(delta_d22x(), scale=1000,
                              fast_functional=True)
            src = machine.device(0).alloc(1_000_000, np.int32)
            dst = machine.device(3).alloc(1_000_000, np.int32)

            def run():
                if use_relay:
                    yield from copy_multihop(machine, span(dst), span(src),
                                             relays=[2])
                else:
                    yield from copy_async(machine, span(dst), span(src))

            machine.run(run())
            return machine.now

        assert timed(use_relay=True) < 0.5 * timed(use_relay=False)

    def test_pipelining_improves_with_blocks(self):
        def timed(blocks: int) -> float:
            machine = Machine(delta_d22x(), scale=1000,
                              fast_functional=True)
            src = machine.device(0).alloc(1_000_000, np.int32)
            dst = machine.device(3).alloc(1_000_000, np.int32)

            def run():
                yield from copy_multihop(machine, span(dst), span(src),
                                         relays=[1], blocks=blocks)

            machine.run(run())
            return machine.now

        assert timed(8) < timed(1)

    def test_size_mismatch_rejected(self, delta):
        src = delta.device(0).alloc(10, np.int32)
        dst = delta.device(3).alloc(20, np.int32)
        with pytest.raises(RuntimeApiError):
            delta.run(copy_multihop(delta, span(dst), span(src),
                                    relays=[1]))

    def test_invalid_blocks_rejected(self, delta):
        src = delta.device(0).alloc(10, np.int32)
        dst = delta.device(3).alloc(10, np.int32)
        with pytest.raises(RuntimeApiError):
            delta.run(copy_multihop(delta, span(dst), span(src),
                                    relays=[1], blocks=0))

    def test_relay_buffers_are_freed(self, delta, rng):
        relay = delta.device(1)
        before = relay.allocated_logical
        src = delta.device(0).alloc(512, np.int32)
        src.data[:] = rng.integers(0, 9, size=512)
        dst = delta.device(3).alloc(512, np.int32)
        delta.run(copy_multihop(delta, span(dst), span(src), relays=[1]))
        assert relay.allocated_logical == before


class TestSortIntegration:
    def test_multihop_p2p_sort_is_correct_and_faster(self, rng):
        from repro.sort import P2PConfig, p2p_sort

        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)

        def run(multihop: bool):
            machine = Machine(delta_d22x(), scale=2_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                            config=P2PConfig(multihop=multihop))

        staged = run(False)
        relayed = run(True)
        assert np.array_equal(relayed.output, np.sort(data))
        assert relayed.duration < staged.duration

    def test_multihop_is_noop_on_dgx(self, rng):
        from repro.sort import P2PConfig, p2p_sort

        data = rng.integers(0, 1 << 30, size=2048).astype(np.int32)

        def run(multihop: bool):
            machine = Machine(dgx_a100(), scale=1_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                            config=P2PConfig(multihop=multihop)).duration

        assert run(True) == pytest.approx(run(False), rel=1e-9)

    def test_multihop_noop_on_ac922(self, rng):
        # No relay path exists, so the flag must not change anything.
        from repro.sort import P2PConfig, p2p_sort

        data = rng.integers(0, 1 << 30, size=2048).astype(np.int32)

        def run(multihop: bool):
            machine = Machine(ibm_ac922(), scale=1_000_000,
                              fast_functional=True)
            return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                            config=P2PConfig(multihop=multihop)).duration

        assert run(True) == pytest.approx(run(False), rel=1e-9)
