"""Unit tests of the copy engine: kinds, timing, payload movement."""

import numpy as np
import pytest

from repro.errors import RuntimeApiError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.runtime.memcpy import copy_all, copy_async, span
from repro.units import gb


def run_copy(machine, dst, src, phase=None):
    machine.run(copy_async(machine, dst, src, phase=phase))


class TestFunctionalEffect:
    def test_htod_moves_payload(self, ac922, rng):
        data = rng.integers(0, 100, size=64, dtype=np.int32)
        host = ac922.host_buffer(data.copy())
        dev = ac922.device(0).alloc(64, np.int32)
        run_copy(ac922, span(dev), span(host))
        assert np.array_equal(dev.data, data)

    def test_partial_spans(self, ac922):
        host = ac922.host_buffer(np.arange(10, dtype=np.int32))
        dev = ac922.device(0).alloc(10, np.int32)
        dev.data[:] = -1
        run_copy(ac922, span(dev, 5, 8), span(host, 0, 3))
        assert list(dev.data[5:8]) == [0, 1, 2]
        assert dev.data[0] == -1

    def test_size_mismatch_rejected(self, ac922):
        host = ac922.host_buffer(np.zeros(4, np.int32))
        dev = ac922.device(0).alloc(8, np.int32)
        with pytest.raises(RuntimeApiError, match="size mismatch"):
            run_copy(ac922, span(dev), span(host))

    def test_dtype_mismatch_rejected(self, ac922):
        host = ac922.host_buffer(np.zeros(4, np.int64))
        dev = ac922.device(0).alloc(4, np.int32)
        with pytest.raises(RuntimeApiError, match="dtype mismatch"):
            run_copy(ac922, span(dev), span(host))

    def test_zero_length_copy_is_free(self, ac922):
        host = ac922.host_buffer(np.zeros(4, np.int32))
        dev = ac922.device(0).alloc(4, np.int32)
        run_copy(ac922, span(dev, 0, 0), span(host, 0, 0))
        assert ac922.now == 0.0

    def test_snapshot_at_issue_time(self, ac922):
        # An in-place transfer swap (3n pipeline) must read the data as
        # of the copy's start, not its end.
        src = ac922.host_buffer(np.full(1000, 7, np.int32))
        staging = ac922.device(0).alloc(1000, np.int32)
        staging.data[:] = 42
        out = ac922.host_buffer(np.zeros(1000, np.int32))

        def scenario():
            outbound = ac922.env.process(
                copy_async(ac922, span(out), span(staging)))
            inbound = ac922.env.process(
                copy_async(ac922, span(staging), span(src)))
            yield outbound & inbound

        ac922.run(scenario())
        assert np.all(out.data == 42)       # old contents drained out
        assert np.all(staging.data == 7)    # new contents arrived


class TestTimingModel:
    def test_htod_rate_matches_link(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        host = machine.host_buffer(np.zeros(1_000_000, np.int32))
        dev = machine.device(0).alloc(1_000_000, np.int32)
        run_copy(machine, span(dev), span(host))
        # 4 GB logical over 72 GB/s NVLink 2.0.
        assert machine.now == pytest.approx(4e9 / gb(72.0), rel=1e-2)

    def test_pageable_buffer_pays_penalty(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        pinned = machine.host_buffer(np.zeros(1_000_000, np.int32))
        dev = machine.device(0).alloc(1_000_000, np.int32)
        run_copy(machine, span(dev), span(pinned))
        pinned_time = machine.now

        machine2 = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        pageable = machine2.host_buffer(np.zeros(1_000_000, np.int32),
                                        pinned=False)
        dev2 = machine2.device(0).alloc(1_000_000, np.int32)
        run_copy(machine2, span(dev2), span(pageable))
        assert machine2.now == pytest.approx(2 * pinned_time, rel=0.05)

    def test_host_staged_p2p_is_capped(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        a = machine.device(0).alloc(1_000_000, np.int32)
        b = machine.device(2).alloc(1_000_000, np.int32)
        run_copy(machine, span(b), span(a))
        # 0.8 x 41 GB/s = 32.8 GB/s (Figure 5a: ~32).
        assert 4e9 / machine.now / 1e9 == pytest.approx(32.8, rel=0.02)

    def test_local_dtod_uses_device_rate(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        dev = machine.device(0)
        a = dev.alloc(1_000_000, np.int32)
        b = dev.alloc(1_000_000, np.int32)
        run_copy(machine, span(b), span(a))
        assert 4e9 / machine.now / 1e9 == pytest.approx(360.0, rel=0.02)

    def test_host_to_host_crosses_cpu_interconnect(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        src = machine.host_buffer(np.zeros(1_000_000, np.int32), numa=0)
        dst = machine.host_buffer(np.zeros(1_000_000, np.int32), numa=1)
        run_copy(machine, span(dst), span(src))
        assert 4e9 / machine.now / 1e9 == pytest.approx(41.0, rel=0.02)

    def test_phase_recorded_in_trace(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        host = machine.host_buffer(np.zeros(1000, np.int32))
        dev = machine.device(0).alloc(1000, np.int32)
        run_copy(machine, span(dev), span(host), phase="HtoD")
        assert machine.trace.phases() == ["HtoD"]
        assert machine.trace.spans[0].actor == "gpu0"


class TestCopyEngines:
    def test_same_direction_copies_serialize_per_gpu(self):
        # Two HtoD copies to ONE GPU share its single inbound engine, so
        # they serialize rather than halving the link fairly.
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        host = machine.host_buffer(np.zeros(1_000_000, np.int32))
        d1 = machine.device(0).alloc(1_000_000, np.int32)
        d2 = machine.device(0).alloc(1_000_000, np.int32)

        def scenario():
            yield machine.env.all_of([
                machine.env.process(copy_async(machine, span(d1), span(host))),
                machine.env.process(copy_async(machine, span(d2), span(host))),
            ])

        machine.run(scenario())
        assert machine.now == pytest.approx(2 * 4e9 / gb(72.0), rel=0.02)

    def test_opposite_directions_overlap(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        host_in = machine.host_buffer(np.zeros(1_000_000, np.int32))
        host_out = machine.host_buffer(np.zeros(1_000_000, np.int32))
        d = machine.device(0).alloc(1_000_000, np.int32)
        d2 = machine.device(0).alloc(1_000_000, np.int32)

        def scenario():
            yield machine.env.all_of([
                machine.env.process(copy_async(machine, span(d), span(host_in))),
                machine.env.process(copy_async(machine, span(host_out), span(d2))),
            ])

        machine.run(scenario())
        # Bidirectional: the slower leg is DtoH, bound by the host
        # memory write capacity under duplex (109 x 0.544 GB/s), a bit
        # tighter than the NVLink's own duplex rate.
        assert machine.now == pytest.approx(4e9 / (gb(109.0) * 0.544),
                                            rel=0.02)
        # Still far faster than two serialized unidirectional copies.
        assert machine.now < 1.6 * (4e9 / gb(72.0))


class TestCopyAll:
    def test_copy_all_runs_concurrently(self):
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        pairs = []
        for gpu_id in (0, 2):
            host = machine.host_buffer(np.zeros(1_000_000, np.int32))
            dev = machine.device(gpu_id).alloc(1_000_000, np.int32)
            pairs.append((span(dev), span(host)))
        machine.run(copy_all(machine, pairs, phase="HtoD"))
        # Separate PCIe switches: both copies at full 24.5 GB/s.
        assert machine.now == pytest.approx(4e9 / gb(24.5), rel=0.02)

    def test_copy_all_empty(self, ac922):
        ac922.run(copy_all(ac922, []))
        assert ac922.now == 0.0


class TestSpan:
    def test_span_bounds_checked(self, ac922):
        buffer = ac922.host_buffer(np.zeros(10, np.int32))
        with pytest.raises(RuntimeApiError):
            span(buffer, 5, 20)
        with pytest.raises(RuntimeApiError):
            span(buffer, -1, 5)

    def test_span_defaults_to_whole_buffer(self, ac922):
        buffer = ac922.host_buffer(np.zeros(10, np.int32))
        assert len(span(buffer)) == 10
        assert span(buffer).nbytes == 40
