"""Tests of the functional workspace pool (:mod:`repro.runtime.buffer`)."""

import numpy as np
import pytest

from repro.errors import PoolError, QuotaExceededError, RuntimeApiError
from repro.runtime.buffer import WorkspacePool, default_pool


class TestWorkspacePool:
    def test_take_returns_requested_view(self):
        pool = WorkspacePool()
        view = pool.take(100, np.int32)
        assert view.size == 100
        assert view.dtype == np.int32
        assert pool.misses == 1

    def test_give_take_reuses_base(self):
        pool = WorkspacePool()
        view = pool.take(100, np.int32)
        base = view if view.base is None else view.base
        pool.give(view)
        again = pool.take(50, np.int32)
        assert (again if again.base is None else again.base) is base
        assert pool.hits == 1

    def test_smallest_sufficient_base_wins(self):
        pool = WorkspacePool()
        small = pool.take(10, np.int64)
        large = pool.take(1000, np.int64)
        pool.give(small)
        pool.give(large)
        view = pool.take(5, np.int64)
        assert (view.base if view.base is not None else view).size == 10

    def test_dtypes_are_separate(self):
        pool = WorkspacePool()
        pool.give(pool.take(100, np.int32))
        view = pool.take(100, np.float64)
        assert view.dtype == np.float64
        assert pool.misses == 2

    def test_borrow_context_manager(self):
        pool = WorkspacePool()
        with pool.borrow(64, np.uint32) as scratch:
            scratch[:] = 1
            base = scratch if scratch.base is None else scratch.base
        reused = pool.take(64, np.uint32)
        assert (reused if reused.base is None else reused.base) is base

    def test_borrow_returns_on_exception(self):
        pool = WorkspacePool()
        with pytest.raises(ValueError):
            with pool.borrow(8, np.int32):
                raise ValueError("boom")
        assert pool.take(8, np.int32) is not None
        assert pool.hits == 1

    def test_cache_is_capped(self):
        pool = WorkspacePool()
        views = [pool.take(i + 1, np.int8)
                 for i in range(pool.MAX_CACHED_PER_DTYPE + 3)]
        for view in views:
            pool.give(view)
        assert len(pool._free[np.dtype(np.int8).str]) == \
            pool.MAX_CACHED_PER_DTYPE
        # The largest bases survive the eviction.
        assert pool.cached_bytes == sum(
            range(4, pool.MAX_CACHED_PER_DTYPE + 4))

    def test_zero_length_take(self):
        pool = WorkspacePool()
        view = pool.take(0, np.int32)
        assert view.size == 0
        pool.give(view)

    def test_negative_take_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(RuntimeApiError):
            pool.take(-1, np.int32)

    def test_multidimensional_give_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(RuntimeApiError):
            pool.give(np.zeros((2, 2)))

    def test_clear_drops_everything(self):
        pool = WorkspacePool()
        pool.give(pool.take(100, np.int32))
        assert pool.cached_bytes > 0
        pool.clear()
        assert pool.cached_bytes == 0

    def test_double_release_raises_typed_error(self):
        pool = WorkspacePool()
        view = pool.take(32, np.int32)
        pool.give(view)
        with pytest.raises(PoolError, match="double release"):
            pool.give(view)
        # The free list is intact: the base is cached exactly once.
        assert len(pool._free[np.dtype(np.int32).str]) == 1

    def test_cross_pool_release_raises_typed_error(self):
        ours = WorkspacePool(name="ours")
        theirs = WorkspacePool(name="theirs")
        view = theirs.take(32, np.int32)
        with pytest.raises(PoolError, match="foreign release"):
            ours.give(view)
        # The rightful owner still accepts it.
        theirs.give(view)

    def test_never_borrowed_release_raises(self):
        pool = WorkspacePool()
        with pytest.raises(PoolError, match="foreign release"):
            pool.give(np.zeros(8, dtype=np.int32))

    def test_stats_snapshot(self):
        pool = WorkspacePool()
        held = pool.take(100, np.int32)
        pool.give(pool.take(50, np.float64))
        stats = pool.stats()
        assert stats.borrowed_bytes == {np.dtype(np.int32).str: 400}
        assert stats.free_bytes == {np.dtype(np.float64).str: 400}
        assert stats.total_borrowed == 400
        assert stats.total_free == 400
        assert stats.misses == 2
        assert stats.quota_bytes is None
        pool.give(held)
        assert pool.stats().total_borrowed == 0

    def test_quota_rejects_oversized_take(self):
        pool = WorkspacePool(quota_bytes=1000)
        held = pool.take(200, np.int32)  # 800 bytes on loan
        with pytest.raises(QuotaExceededError):
            pool.take(100, np.int32)  # would be 1200
        small = pool.take(25, np.int32)  # exactly 1000 — allowed
        pool.give(held)
        pool.give(small)
        # Returning loans frees quota for the next borrower.
        pool.give(pool.take(200, np.int32))

    def test_quota_counts_loans_not_cache(self):
        pool = WorkspacePool(quota_bytes=800)
        pool.give(pool.take(200, np.int32))
        # 800 bytes parked in the free list do not consume quota.
        view = pool.take(200, np.int32)
        assert view.size == 200

    def test_negative_quota_rejected(self):
        with pytest.raises(RuntimeApiError):
            WorkspacePool(quota_bytes=-1)

    def test_default_pool_is_shared(self):
        from repro.gpuprims.radix_lsb import radix_sort_lsb

        default_pool.clear()
        values = np.arange(1000, 0, -1, dtype=np.int32)
        radix_sort_lsb(values)
        before = default_pool.misses
        radix_sort_lsb(values)
        # The second sort reuses the first sort's auxiliary buffer.
        assert default_pool.misses == before
