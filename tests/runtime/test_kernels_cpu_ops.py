"""Unit tests of kernel launches and host-side compute operations."""

import numpy as np
import pytest

from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.runtime.cpu_ops import cpu_multiway_merge, cpu_sort
from repro.runtime.kernels import merge_two_on_device, sort_on_device
from repro.runtime.memcpy import span
from repro.units import gb


class TestSortKernel:
    def test_sorts_payload(self, dgx, rng):
        buffer = dgx.device(0).alloc(5000, np.int32)
        buffer.data[:] = rng.integers(0, 1 << 30, size=5000)
        expected = np.sort(buffer.data)
        dgx.run(sort_on_device(dgx, span(buffer)))
        assert np.array_equal(buffer.data, expected)

    def test_duration_matches_table2(self):
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        buffer = machine.device(0).alloc(1_000_000, np.int32)
        machine.run(sort_on_device(machine, span(buffer)))
        assert machine.now * 1e3 == pytest.approx(36.0, rel=0.01)

    def test_primitive_changes_duration(self):
        durations = {}
        for primitive in ("thrust", "stehle", "mgpu"):
            machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
            buffer = machine.device(0).alloc(1_000_000, np.int32)
            machine.run(sort_on_device(machine, span(buffer),
                                       primitive=primitive))
            durations[primitive] = machine.now
        assert durations["thrust"] < durations["stehle"] < durations["mgpu"]

    def test_exact_functional_mode_uses_primitive(self, dgx, rng):
        buffer = dgx.device(0).alloc(3000, np.float32)
        buffer.data[:] = rng.normal(size=3000).astype(np.float32)
        expected = np.sort(buffer.data)
        dgx.run(sort_on_device(dgx, span(buffer), primitive="stehle"))
        assert np.array_equal(buffer.data, expected)

    def test_trace_records_sort_phase(self, dgx, rng):
        buffer = dgx.device(0).alloc(100, np.int32)
        buffer.data[:] = rng.integers(0, 100, size=100)
        dgx.run(sort_on_device(dgx, span(buffer), phase="Sort"))
        assert dgx.trace.phases() == ["Sort"]


class TestMergeKernel:
    def test_merges_two_runs_in_place(self, dgx, rng):
        buffer = dgx.device(0).alloc(2000, np.int32)
        buffer.data[:1200] = np.sort(rng.integers(0, 1000, size=1200))
        buffer.data[1200:] = np.sort(rng.integers(0, 1000, size=800))
        expected = np.sort(buffer.data)
        dgx.run(merge_two_on_device(dgx, span(buffer), split=1200))
        assert np.array_equal(buffer.data, expected)

    def test_degenerate_splits_are_noops(self, dgx):
        buffer = dgx.device(0).alloc(100, np.int32)
        buffer.data[:] = np.arange(100)
        dgx.run(merge_two_on_device(dgx, span(buffer), split=0))
        assert np.array_equal(buffer.data, np.arange(100))

    def test_split_bounds_checked(self, dgx):
        buffer = dgx.device(0).alloc(10, np.int32)
        with pytest.raises(ValueError):
            dgx.run(merge_two_on_device(dgx, span(buffer), split=11))

    def test_duration_uses_merge_rate(self):
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        buffer = machine.device(0).alloc(1_000_000, np.int32)
        buffer.data[:500_000] = np.arange(500_000)
        buffer.data[500_000:] = np.arange(500_000)
        machine.run(merge_two_on_device(machine, span(buffer), 500_000))
        assert machine.now == pytest.approx(4e9 / gb(380.0), rel=0.01)


class TestCpuSort:
    def test_sorts_host_buffer(self, ac922, rng):
        buffer = ac922.host_buffer(
            rng.integers(0, 1 << 30, size=4000).astype(np.int32))
        expected = np.sort(buffer.data)
        ac922.run(cpu_sort(ac922, buffer))
        assert np.array_equal(buffer.data, expected)

    def test_duration_matches_paradis_rate(self):
        machine = Machine(ibm_ac922(), scale=1000, fast_functional=True)
        buffer = machine.host_buffer(np.zeros(1_000_000, np.int32))
        machine.run(cpu_sort(machine, buffer, primitive="paradis"))
        assert machine.now == pytest.approx(4e9 / gb(2.35), rel=0.01)

    def test_defaults_to_best_primitive(self, dgx, rng):
        buffer = dgx.host_buffer(
            rng.integers(0, 100, size=100).astype(np.int32))
        dgx.run(cpu_sort(dgx, buffer))
        assert np.array_equal(buffer.data, np.sort(buffer.data))


class TestCpuMultiwayMerge:
    def test_merges_runs(self, ac922, rng):
        runs = [np.sort(rng.integers(0, 500, size=n).astype(np.int32))
                for n in (100, 250, 50)]
        out = np.empty(400, dtype=np.int32)
        ac922.run(cpu_multiway_merge(ac922, out, runs))
        assert np.array_equal(out, np.sort(np.concatenate(runs)))

    def test_size_mismatch_rejected(self, ac922):
        out = np.empty(10, dtype=np.int32)
        with pytest.raises(Exception):
            ac922.run(cpu_multiway_merge(
                ac922, out, [np.zeros(4, np.int32)]))

    def test_k_factor_slows_wide_merges(self):
        def merge_time(k):
            machine = Machine(ibm_ac922(), scale=1000,
                              fast_functional=True)
            per_run = 1_000_000 // k
            runs = [np.zeros(per_run, np.int32) for _ in range(k)]
            out = np.empty(per_run * k, dtype=np.int32)
            machine.run(cpu_multiway_merge(machine, out, runs))
            return machine.now

        # Section 6.1.1: four chunks take ~8% longer than two.
        assert merge_time(4) / merge_time(2) == pytest.approx(1.08, rel=0.01)

    def test_competes_with_gpu_copies_for_memory(self):
        # Section 6.2: a concurrent CPU merge slows CPU-GPU copies.
        from repro.runtime.memcpy import copy_async

        def copy_time(with_merge: bool) -> float:
            machine = Machine(ibm_ac922(), scale=2000,
                              fast_functional=True)
            host = machine.host_buffer(np.zeros(2_000_000, np.int32))
            dev = machine.device(0).alloc(2_000_000, np.int32)

            def scenario():
                procs = [machine.env.process(
                    copy_async(machine, span(dev), span(host)))]
                if with_merge:
                    big = np.zeros(4_000_000, np.int32)
                    out = np.empty_like(big)
                    procs.append(machine.env.process(cpu_multiway_merge(
                        machine, out, [big])))
                yield machine.env.all_of(procs)

            machine.run(scenario())
            return machine.now

        assert copy_time(with_merge=True) > copy_time(with_merge=False)
