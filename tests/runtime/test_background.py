"""Tests of background workloads and the co-running experiment."""

import numpy as np
import pytest

from repro.bench.experiments.co_running import sort_under_load
from repro.errors import RuntimeApiError
from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.runtime.background import start_copy_stream, start_memory_scan
from repro.runtime.memcpy import copy_async, span
from repro.sort import het_sort
from repro.units import gb


class TestMemoryScan:
    def test_scan_slows_concurrent_copies(self):
        def copy_time(scan: bool) -> float:
            machine = Machine(ibm_ac922(), scale=1000,
                              fast_functional=True)
            if scan:
                start_memory_scan(machine, gb(100.0))
            host = machine.host_buffer(np.zeros(1_000_000, np.int32))
            dev = machine.device(0).alloc(1_000_000, np.int32)
            machine.run(copy_async(machine, span(dev), span(host)))
            return machine.now

        assert copy_time(scan=True) > 1.2 * copy_time(scan=False)

    def test_scan_does_not_break_correctness(self, rng):
        machine = Machine(ibm_ac922(), scale=1)
        start_memory_scan(machine, gb(60.0))
        keys = rng.integers(0, 1000, size=2000).astype(np.int32)
        result = het_sort(machine, keys, gpu_ids=(0, 1))
        assert np.array_equal(result.output, np.sort(keys))

    def test_invalid_bandwidth(self, ac922):
        with pytest.raises(RuntimeApiError):
            start_memory_scan(ac922, 0.0)


class TestCopyStream:
    def test_bounded_stream_completes(self, ac922, rng):
        start_copy_stream(ac922, gpu_id=0, chunk_elements=100, count=3)
        keys = rng.integers(0, 100, size=500).astype(np.int32)
        result = het_sort(ac922, keys, gpu_ids=(2, 3))
        assert np.array_equal(result.output, np.sort(keys))

    def test_direction_validation(self, ac922):
        with pytest.raises(RuntimeApiError):
            start_copy_stream(ac922, 0, direction="sideways")

    def test_stream_contends_on_shared_switch(self):
        # A stream on GPU 7 shares pcie_sw3 with GPU 6 on the DGX.
        def copy_time(stream: bool) -> float:
            machine = Machine(dgx_a100(), scale=1000,
                              fast_functional=True)
            if stream:
                start_copy_stream(machine, gpu_id=7)
            host = machine.host_buffer(np.zeros(1_000_000, np.int32))
            dev = machine.device(6).alloc(1_000_000, np.int32)
            machine.run(copy_async(machine, span(dev), span(host)))
            return machine.now

        assert copy_time(stream=True) > 1.5 * copy_time(stream=False)


class TestCoRunningExperiment:
    def test_exclusive_matches_plain_run(self):
        exclusive = sort_under_load("dgx-a100", "p2p", 4, "exclusive")
        from repro.bench.experiments.sort_scaling import sort_duration
        assert exclusive == pytest.approx(
            sort_duration("dgx-a100", "p2p", 4, 2.0), rel=1e-6)

    def test_neighbours_always_slow_the_sort(self):
        for algorithm in ("p2p", "het"):
            clean = sort_under_load("dgx-a100", algorithm, 4, "exclusive")
            scan = sort_under_load("dgx-a100", algorithm, 4,
                                   "memory scan (40 GB/s)")
            stream = sort_under_load("dgx-a100", algorithm, 4,
                                     "copy stream (1 GPU)")
            assert scan > clean
            assert stream > clean
