"""Unit tests of device memory accounting and buffers."""

import numpy as np
import pytest

from repro.errors import AllocationError, RuntimeApiError
from repro.hw import ibm_ac922
from repro.runtime import Machine


class TestAllocator:
    def test_alloc_tracks_logical_bytes(self, ac922):
        device = ac922.device(0)
        buffer = device.alloc(1000, np.int32)
        assert device.allocated_logical == 4000
        buffer.free()
        assert device.allocated_logical == 0

    def test_scale_multiplies_accounting(self):
        machine = Machine(ibm_ac922(), scale=1e6)
        device = machine.device(0)
        device.alloc(1000, np.int32)
        assert device.allocated_logical == pytest.approx(4e9)

    def test_over_allocation_raises(self):
        machine = Machine(ibm_ac922(), scale=1e9)
        device = machine.device(0)
        with pytest.raises(AllocationError, match="exceeds free capacity"):
            device.alloc(10_000_000, np.int32)  # 40 PB logical

    def test_double_free_rejected(self, ac922):
        buffer = ac922.device(0).alloc(10, np.int32)
        buffer.free()
        with pytest.raises(AllocationError):
            buffer.free()

    def test_max_elements_respects_scale(self):
        machine = Machine(ibm_ac922(), scale=1000)
        device = machine.device(0)
        elements = device.max_elements(np.int32)
        assert elements * 4 * 1000 <= device.capacity_logical

    def test_alloc_timed_charges_malloc_time(self):
        machine = Machine(ibm_ac922(), scale=1e3)
        device = machine.device(0)

        def run():
            # 2M int32 physical = 8 GB logical -> 150 ms (Section 5.1).
            yield from device.alloc_timed(2_000_000, np.int32)

        machine.run(run())
        assert machine.now == pytest.approx(0.15, rel=1e-2)

    def test_reset_clears_everything(self, ac922):
        device = ac922.device(0)
        device.alloc(10, np.int32)
        device.reset()
        assert device.allocated_logical == 0

    def test_unknown_gpu_rejected(self, ac922):
        with pytest.raises(RuntimeApiError):
            ac922.device(4)


class TestDeviceBuffer:
    def test_views(self, ac922):
        buffer = ac922.device(0).alloc(10, np.int32)
        buffer.data[:] = np.arange(10)
        assert list(buffer.view(2, 5)) == [2, 3, 4]
        with pytest.raises(RuntimeApiError):
            buffer.view(5, 20)

    def test_valid_prefix(self, ac922):
        buffer = ac922.device(0).alloc(10, np.int32)
        buffer.valid = 4
        assert buffer.valid_view().size == 4

    def test_one_dimensional_only(self, ac922):
        from repro.runtime.buffer import DeviceBuffer
        with pytest.raises(RuntimeApiError):
            DeviceBuffer(ac922.device(0), np.zeros((2, 2)))


class TestHostBuffer:
    def test_wrap_array(self, ac922):
        buffer = ac922.host_buffer(np.arange(5, dtype=np.int64))
        assert buffer.nbytes == 40
        assert buffer.pinned
        assert buffer.numa == 0

    def test_alloc_by_count_needs_dtype(self, ac922):
        with pytest.raises(RuntimeApiError):
            ac922.host_buffer(100)
        buffer = ac922.host_buffer(100, dtype=np.float32)
        assert len(buffer) == 100

    def test_invalid_numa_rejected(self, ac922):
        with pytest.raises(RuntimeApiError):
            ac922.host_buffer(np.zeros(4), numa=7)

    def test_repr(self, ac922):
        assert "pinned" in repr(ac922.host_buffer(np.zeros(4, np.int32)))


class TestMachine:
    def test_scale_validation(self):
        with pytest.raises(RuntimeApiError):
            Machine(ibm_ac922(), scale=0.5)

    def test_logical_bytes(self):
        machine = Machine(ibm_ac922(), scale=100)
        assert machine.logical_bytes(8) == 800

    def test_repr(self, ac922):
        assert "ibm-ac922" in repr(ac922)


class TestUseAfterFree:
    def test_data_access_after_free_raises(self, ac922):
        from repro.errors import RuntimeApiError
        import pytest as _pytest

        buffer = ac922.device(0).alloc(16, np.int32, label="victim")
        buffer.free()
        with _pytest.raises(RuntimeApiError, match="use after free"):
            _ = buffer.data
        with _pytest.raises(RuntimeApiError, match="use after free"):
            buffer.view(0, 4)

    def test_copy_from_freed_buffer_raises(self, ac922):
        from repro.errors import RuntimeApiError
        from repro.runtime.memcpy import copy_async, span
        import pytest as _pytest

        src = ac922.device(0).alloc(16, np.int32)
        dst = ac922.host_buffer(np.zeros(16, np.int32))
        spn = span(src)
        src.free()
        with _pytest.raises(RuntimeApiError, match="use after free"):
            ac922.run(copy_async(ac922, span(dst), spn))

    def test_metadata_still_readable_after_free(self, ac922):
        buffer = ac922.device(0).alloc(16, np.int32)
        buffer.free()
        assert buffer.capacity == 16
        assert buffer.nbytes == 64
        assert "DeviceBuffer" in repr(buffer)
