"""Unit tests of streams and the semaphore."""

import pytest

from repro.errors import RuntimeApiError
from repro.runtime import Semaphore, Stream


class TestStream:
    def test_operations_serialize(self, ac922):
        stream = Stream(ac922, "s")
        order = []

        def op(tag, delay):
            yield ac922.env.timeout(delay)
            order.append((tag, ac922.now))

        stream.submit(op("first", 5))
        stream.submit(op("second", 1))
        ac922.run(stream.synchronize())
        assert order == [("first", 5.0), ("second", 6.0)]

    def test_different_streams_overlap(self, ac922):
        s1, s2 = Stream(ac922), Stream(ac922)
        done = []

        def op(tag):
            yield ac922.env.timeout(5)
            done.append((tag, ac922.now))

        s1.submit(op("a"))
        s2.submit(op("b"))

        def wait_both():
            yield s1.synchronize() & s2.synchronize()

        ac922.run(wait_both())
        assert ac922.now == 5.0
        assert len(done) == 2

    def test_submit_returns_operation_result(self, ac922):
        stream = Stream(ac922)

        def op():
            yield ac922.env.timeout(1)
            return "value"

        process = stream.submit(op())
        assert ac922.run(process) == "value"

    def test_synchronize_on_empty_stream(self, ac922):
        stream = Stream(ac922)

        def wait():
            yield stream.synchronize()
            return ac922.now

        assert ac922.run(wait()) == 0.0


class TestSemaphore:
    def test_capacity_enforced(self, env):
        sem = Semaphore(env, 2)
        grabbed = []

        def worker(tag):
            yield sem.acquire()
            grabbed.append((tag, env.now))
            yield env.timeout(10)
            sem.release()

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        times = dict(grabbed)
        assert times["a"] == 0 and times["b"] == 0
        assert times["c"] == 10

    def test_fifo_ordering(self, env):
        sem = Semaphore(env, 1)
        order = []

        def worker(tag, arrival):
            yield env.timeout(arrival)
            yield sem.acquire()
            order.append(tag)
            yield env.timeout(5)
            sem.release()

        env.process(worker("late", 2))
        env.process(worker("early", 1))
        env.run()
        assert order == ["early", "late"]

    def test_available_count(self, env):
        sem = Semaphore(env, 3)
        assert sem.available == 3
        sem.acquire()
        assert sem.available == 2

    def test_release_without_acquire(self, env):
        sem = Semaphore(env, 1)
        with pytest.raises(RuntimeApiError):
            sem.release()

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Semaphore(env, 0)
