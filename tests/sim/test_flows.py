"""Unit tests of the max-min fair flow network."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.resources import Direction, Resource, SharingCurve

FWD, REV = Direction.FWD, Direction.REV


def run_until_done(env, net, flows):
    def waiter():
        yield env.all_of([f.done for f in flows])

    env.run(env.process(waiter()))


class TestSingleFlow:
    def test_duration_is_size_over_capacity(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 50.0)
        run_until_done(env, net, [flow])
        assert env.now == pytest.approx(5.0)
        assert flow.finished_at == pytest.approx(5.0)

    def test_rate_cap_binds_below_capacity(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 50.0, rate_cap=5.0)
        run_until_done(env, net, [flow])
        assert env.now == pytest.approx(10.0)

    def test_zero_size_completes_immediately(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 0.0)
        assert flow.done.triggered
        assert flow.finished_at == env.now

    def test_unconstrained_flow_rejected(self, env, net):
        with pytest.raises(SimulationError):
            net.start_flow([], 100.0)

    def test_routeless_flow_with_cap_allowed(self, env, net):
        flow = net.start_flow([], 100.0, rate_cap=10.0)
        run_until_done(env, net, [flow])
        assert env.now == pytest.approx(10.0)

    def test_negative_size_rejected(self, env, net):
        with pytest.raises(ValueError):
            net.start_flow([], -1.0, rate_cap=1.0)

    def test_invalid_rate_cap_rejected(self, env, net):
        with pytest.raises(ValueError):
            net.start_flow([], 1.0, rate_cap=0.0)


class TestFairSharing:
    def test_equal_flows_split_capacity(self, env, net):
        link = Resource("l", 10.0)
        flows = [net.start_flow([(link, FWD)], 50.0) for _ in range(2)]
        run_until_done(env, net, flows)
        assert env.now == pytest.approx(10.0)

    def test_short_flow_finishes_and_frees_bandwidth(self, env, net):
        link = Resource("l", 10.0)
        long_flow = net.start_flow([(link, FWD)], 100.0)
        short_flow = net.start_flow([(link, FWD)], 50.0)
        run_until_done(env, net, [short_flow])
        assert env.now == pytest.approx(10.0)
        run_until_done(env, net, [long_flow])
        # 50 bytes at rate 5 until t=10, then 50 at rate 10 -> t=15.
        assert env.now == pytest.approx(15.0)

    def test_opposite_directions_do_not_share(self, env, net):
        link = Resource("l", 10.0)
        fwd = net.start_flow([(link, FWD)], 100.0)
        rev = net.start_flow([(link, REV)], 100.0)
        run_until_done(env, net, [fwd, rev])
        assert env.now == pytest.approx(10.0)

    def test_duplex_penalty_lifts_after_reverse_finishes(self, env, net):
        link = Resource("l", 10.0, duplex_factor=0.5)
        fwd = net.start_flow([(link, FWD)], 100.0)
        net.start_flow([(link, REV)], 25.0)
        run_until_done(env, net, [fwd])
        # 25 bytes at 5/s until t=5, then 75 at 10/s -> 12.5.
        assert env.now == pytest.approx(12.5)

    def test_bottleneck_on_multi_hop_route(self, env, net):
        fast = Resource("fast", 100.0)
        slow = Resource("slow", 10.0)
        flow = net.start_flow([(fast, FWD), (slow, FWD)], 100.0)
        run_until_done(env, net, [flow])
        assert env.now == pytest.approx(10.0)

    def test_water_filling_uneven_bottlenecks(self, env, net):
        # Flow A crosses shared (cap 10) only; flow B also crosses a
        # private slow link (cap 2).  Max-min: B gets 2, A gets 8.
        shared = Resource("shared", 10.0)
        private = Resource("private", 2.0)
        a = net.start_flow([(shared, FWD)], 80.0)
        b = net.start_flow([(shared, FWD), (private, FWD)], 20.0)
        run_until_done(env, net, [a, b])
        assert a.finished_at == pytest.approx(10.0)
        assert b.finished_at == pytest.approx(10.0)

    def test_rate_caps_release_share_to_others(self, env, net):
        shared = Resource("shared", 10.0)
        capped = net.start_flow([(shared, FWD)], 30.0, rate_cap=3.0)
        free = net.start_flow([(shared, FWD)], 70.0)
        run_until_done(env, net, [capped, free])
        # capped at 3, free gets 7: both take 10s.
        assert capped.finished_at == pytest.approx(10.0)
        assert free.finished_at == pytest.approx(10.0)

    def test_sharing_curve_degrades_capacity(self, env, net):
        link = Resource("l", 10.0, sharing=SharingCurve({2: 0.5}))
        flows = [net.start_flow([(link, FWD)], 25.0) for _ in range(2)]
        run_until_done(env, net, flows)
        # 2 flows -> capacity 5 -> 2.5 each -> 10s.
        assert env.now == pytest.approx(10.0)

    def test_same_resource_both_directions_in_one_route(self, env, net):
        # A compute flow reading and writing one memory: the rate is
        # bound by the tighter direction under duplex.
        memory = Resource("mem", capacity_fwd=10.0, capacity_rev=4.0,
                          duplex_factor=1.0)
        flow = net.start_flow([(memory, FWD), (memory, REV)], 40.0)
        run_until_done(env, net, [flow])
        assert env.now == pytest.approx(10.0)


class TestAccounting:
    def test_delivered_bytes_recorded(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 50.0)
        run_until_done(env, net, [flow])
        assert net.delivered[(link, FWD)] == pytest.approx(50.0)

    def test_conservation_across_many_flows(self, env, net, rng):
        link = Resource("l", 7.0)
        sizes = [float(s) for s in rng.integers(1, 100, size=20)]
        flows = [net.start_flow([(link, FWD)], s) for s in sizes]
        run_until_done(env, net, flows)
        assert net.delivered[(link, FWD)] == pytest.approx(sum(sizes))

    def test_utilization_snapshot(self, env, net):
        link = Resource("l", 10.0)
        net.start_flow([(link, FWD)], 100.0)
        net.start_flow([(link, FWD)], 100.0)
        assert net.utilization(link, Direction.FWD) == pytest.approx(10.0)
        assert net.utilization(link, Direction.REV) == 0.0

    def test_active_flows_listing(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 100.0)
        assert flow in net.active_flows
        run_until_done(env, net, [flow])
        assert net.active_flows == []

    def test_flow_repr(self, env, net):
        link = Resource("l", 10.0)
        flow = net.start_flow([(link, FWD)], 10.0, label="hto d")
        assert "hto d" in repr(flow)


class TestStaggeredArrivals:
    def test_late_flow_reshapes_rates(self, env, net):
        link = Resource("l", 10.0)
        first = net.start_flow([(link, FWD)], 100.0)

        def late_start():
            yield env.timeout(5.0)
            second = net.start_flow([(link, FWD)], 25.0)
            yield second.done
            return env.now

        p = env.process(late_start())
        env.run(until=p)
        # First runs alone 5s (50 delivered); then both at 5/s: second's
        # 25 bytes take 5s -> t=10.
        assert env.now == pytest.approx(10.0)
        run_until_done(env, net, [first])
        # First: 50 remaining at t=10 minus 25 delivered during sharing
        # -> 25 left at 10/s -> t=12.5.
        assert env.now == pytest.approx(12.5)

    def test_transfer_helper(self, env, net):
        link = Resource("l", 10.0)

        def proc():
            flow = yield from net.transfer([(link, FWD)], 30.0)
            return flow.finished_at

        assert env.run(env.process(proc())) == pytest.approx(3.0)
