"""The vectorized water-fill solver against the retained reference.

:func:`repro.sim.solver.water_fill_arrays` promises *bit-identical*
allocations to :func:`repro.sim.solver.water_fill_reference` (the
pre-vectorization dict implementation) — same divisions, same
first-minimum bottleneck choice, same charge rounding.  These tests pin
that contract on randomized topologies and on the degenerate cases the
array layout could plausibly get wrong: the zero-capacity guard, a
single flow, every flow on one link, and duplex contention.

Comparisons use plain ``==`` on floats, never ``approx``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment, SimulationError
from repro.sim.flows import Flow, FlowNetwork
from repro.sim.resources import Direction, Resource, SharingCurve
from repro.sim.solver import water_fill_arrays, water_fill_reference

FWD, REV = Direction.FWD, Direction.REV


class _DeadResource(Resource):
    """A resource whose effective capacity collapses to zero under load."""

    __slots__ = ()

    def effective_capacity(self, direction, flows_this_direction,
                           flows_other_direction):
        return 0.0


def _build(resource_specs, flow_specs):
    """Insert flows into a fresh network without allocating rates.

    ``_insert`` maintains both the dict membership index (what the
    reference reads) and the flow/key tables (what the vectorized
    solver reads), so both solvers see exactly the same state.
    """
    env = Environment()
    net = FlowNetwork(env)
    resources = [
        Resource(f"r{i}", cap, duplex_factor=duplex,
                 sharing=SharingCurve(sharing) if sharing else None)
        for i, (cap, duplex, sharing) in enumerate(resource_specs)]
    flows = []
    for j, (hops, size, rate_cap) in enumerate(flow_specs):
        route = [(resources[idx], REV if rev else FWD) for idx, rev in hops]
        flow = Flow(net, route, size, rate_cap=rate_cap, label=f"f{j}")
        net._insert(flow)
        flows.append(flow)
    return net, resources, flows


def _assert_solvers_agree(net):
    """Both solvers produce identical rates (or identical errors)."""
    act = net._ft.active_slots()
    flows = list(net._flows)
    assert len(flows) == len(act)
    try:
        ref = water_fill_reference(net._flows, net._members, net._resources)
    except SimulationError as expected:
        with pytest.raises(SimulationError) as caught:
            water_fill_arrays(net._ft, net._kt, act, members=net._members)
        assert str(caught.value) == str(expected)
        return None
    vec = water_fill_arrays(net._ft, net._kt, act, members=net._members)
    for i, flow in enumerate(flows):
        assert vec[i] == ref[flow], (
            f"{flow.label}: vectorized {vec[i]!r} != reference "
            f"{ref[flow]!r}")
    return ref


# -- randomized topologies -----------------------------------------------

_capacity = st.floats(min_value=0.5, max_value=100.0,
                      allow_nan=False, allow_infinity=False)
_size = st.floats(min_value=1.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
_rate_cap = st.floats(min_value=0.1, max_value=50.0,
                      allow_nan=False, allow_infinity=False)
_resource_spec = st.tuples(
    _capacity,
    st.sampled_from([1.0, 0.5, 0.8]),
    st.sampled_from([None, {2: 0.5}, {2: 0.9, 4: 0.6}]))


@st.composite
def _scenarios(draw):
    n_res = draw(st.integers(min_value=1, max_value=5))
    resource_specs = [draw(_resource_spec) for _ in range(n_res)]
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flow_specs = []
    for _ in range(n_flows):
        hops = draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=n_res - 1),
                      st.booleans()),
            min_size=0, max_size=4))
        rate_cap = draw(st.one_of(st.none(), _rate_cap))
        if not hops and rate_cap is None:
            rate_cap = draw(_rate_cap)  # unconstrained flows are invalid
        flow_specs.append((hops, draw(_size), rate_cap))
    return resource_specs, flow_specs


@settings(max_examples=200, deadline=None)
@given(_scenarios())
def test_randomized_topologies_allocate_identically(scenario):
    resource_specs, flow_specs = scenario
    net, _resources, _flows = _build(resource_specs, flow_specs)
    _assert_solvers_agree(net)


# -- degenerate cases ----------------------------------------------------

def test_single_flow():
    net, _r, flows = _build([(10.0, 1.0, None)], [([(0, False)], 50.0, None)])
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 10.0


def test_single_flow_rate_capped():
    net, _r, flows = _build([(10.0, 1.0, None)],
                            [([(0, False)], 50.0, 2.5)])
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 2.5


def test_routeless_capped_flow():
    net, _r, flows = _build([], [([], 50.0, 7.0)])
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 7.0


def test_all_flows_on_one_link():
    specs = [([(0, False)], 10.0 + i, None) for i in range(7)]
    net, _r, flows = _build([(21.0, 1.0, None)], specs)
    ref = _assert_solvers_agree(net)
    assert all(ref[f] == 3.0 for f in flows)


def test_duplex_contention():
    # Both directions of one duplex-penalized resource: capacity halves
    # while the opposite direction is busy.
    specs = [([(0, False)], 40.0, None), ([(0, True)], 40.0, None)]
    net, _r, flows = _build([(10.0, 0.5, None)], specs)
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 5.0
    assert ref[flows[1]] == 5.0


def test_same_resource_both_directions_one_route():
    net, _r, _f = _build(
        [(10.0, 0.8, None)],
        [([(0, False), (0, True)], 40.0, None)])
    _assert_solvers_agree(net)


def test_zero_capacity_guard_raises_identically():
    env = Environment()
    net = FlowNetwork(env)
    good = Resource("good", 10.0)
    dead = _DeadResource("dead", 10.0)
    for j, route in enumerate([[(good, FWD)], [(good, FWD), (dead, FWD)]]):
        flow = Flow(net, route, 10.0, label=f"f{j}")
        net._insert(flow)
    with pytest.raises(SimulationError, match="zero effective capacity"):
        water_fill_reference(net._flows, net._members, net._resources)
    _assert_solvers_agree(net)


def test_capped_flows_freeze_before_bottlenecks():
    # Two capped flows (one tighter) and a free flow on one link; the
    # reference freezes capped flows tightest-first.
    specs = [([(0, False)], 30.0, 2.0),
             ([(0, False)], 30.0, 3.0),
             ([(0, False)], 30.0, None)]
    net, _r, flows = _build([(12.0, 1.0, None)], specs)
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 2.0
    assert ref[flows[1]] == 3.0
    assert ref[flows[2]] == 7.0


def test_fault_factor_respected():
    net, resources, flows = _build(
        [(10.0, 1.0, None)], [([(0, False)], 50.0, None)])
    resources[0].set_fault_factor(0.25)
    net._kt.refresh_faults()
    ref = _assert_solvers_agree(net)
    assert ref[flows[0]] == 2.5
