"""Unit tests of the array-of-struct completion calendar.

The calendar is exercised end-to-end by every flow test; these tests
pin its bookkeeping contracts directly: (time, seq) ordering against
the object heap, bulk invalidation accounting (``events_retired``), the
side heap for single pushes, and lazy rebuild semantics.
"""

import numpy as np
import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.flows import FlowNetwork
from repro.sim.resources import Direction, Resource

FWD = Direction.FWD


def _manual_calendar(env):
    """Register a calendar backed by plain test-owned arrays."""
    state = {
        "remaining": np.zeros(64),
        "rate": np.ones(64),
        "token": np.zeros(64, dtype=np.int64),
        "active": np.zeros(64, dtype=bool),
        "dispatched": [],
    }
    cal = env.register_calendar(
        lambda slot, token: state["dispatched"].append((slot, token)),
        lambda slots: env._now + state["remaining"][slots]
        / state["rate"][slots],
        lambda slots, tokens: state["active"][slots]
        & (state["token"][slots] == tokens))
    return cal, state


def _arm(state, slot, remaining, token=1):
    state["remaining"][slot] = remaining
    state["rate"][slot] = 1.0
    state["token"][slot] = token
    state["active"][slot] = True


class TestRegistration:
    def test_second_registration_rejected(self):
        env = Environment()
        FlowNetwork(env)
        with pytest.raises(SimulationError, match="already has"):
            FlowNetwork(env)


class TestOrdering:
    def test_bulk_entries_dispatch_in_time_order(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        for slot, remaining in [(0, 3.0), (1, 1.0), (2, 2.0)]:
            _arm(state, slot, remaining)
        eid0 = env._reserve_eids(3)
        cal.stage(np.array([0, 1, 2]), np.arange(eid0, eid0 + 3),
                  np.ones(3, dtype=np.int64))
        env.run()
        assert state["dispatched"] == [(1, 1), (2, 1), (0, 1)]
        assert env.now == 3.0

    def test_same_time_breaks_ties_by_sequence(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        for slot in (0, 1, 2):
            _arm(state, slot, 5.0)
        eid0 = env._reserve_eids(3)
        cal.stage(np.array([0, 1, 2]), np.arange(eid0, eid0 + 3),
                  np.ones(3, dtype=np.int64))
        env.run()
        # Equal times: staging (arrival) order wins, like the heap did.
        assert state["dispatched"] == [(0, 1), (1, 1), (2, 1)]

    def test_calendar_interleaves_with_object_events(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        seen = []
        _arm(state, 0, 2.0)
        cal.stage(np.array([0]), np.array([env._reserve_eids(1)]),
                  np.ones(1, dtype=np.int64))
        state["dispatched"] = seen  # record interleaving directly

        def proc():
            yield env.timeout(1.0)
            seen.append("t1")
            yield env.timeout(2.0)
            seen.append("t3")

        env.process(proc())
        env.run()
        assert seen == ["t1", (0, 1), "t3"]

    def test_push_merges_with_staged_bulk(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        _arm(state, 0, 4.0, token=1)
        cal.stage(np.array([0]), np.array([env._reserve_eids(1)]),
                  np.ones(1, dtype=np.int64))
        _arm(state, 5, 1.0, token=2)
        cal.push(1.0, env._reserve_eids(1), 5, 2)
        env.run()
        assert state["dispatched"] == [(5, 2), (0, 1)]


class TestInvalidation:
    def test_restaging_counts_discarded_entries(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        for slot in (0, 1, 2):
            _arm(state, slot, 1.0)
        eids = np.arange(env._reserve_eids(3), env._eid + 1)
        cal.stage(np.array([0, 1, 2]), eids, np.ones(3, dtype=np.int64))
        # Restage before any rebuild: all three staged entries retire.
        cal.stage(np.array([0]), np.array([env._reserve_eids(1)]),
                  np.array([1], dtype=np.int64))
        assert cal.invalidated == 3
        env.run()
        assert state["dispatched"] == [(0, 1)]
        assert env.events_processed == 1
        assert env.events_retired == 4

    def test_rebuild_drops_token_mismatches(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        _arm(state, 0, 1.0, token=1)
        _arm(state, 1, 1.0, token=7)  # staged under a stale token
        eid0 = env._reserve_eids(2)
        cal.stage(np.array([0, 1]), np.arange(eid0, eid0 + 2),
                  np.array([1, 1], dtype=np.int64))
        env.run()
        assert state["dispatched"] == [(0, 1)]
        assert cal.invalidated == 1

    def test_stale_single_push_dispatches_as_noop(self):
        # Side-heap entries are not bulk-discarded; like the old
        # per-object completions they pop through the engine and the
        # owner's token check makes them no-ops.
        env = Environment()
        cal, state = _manual_calendar(env)
        _arm(state, 0, 1.0, token=1)
        cal.push(1.0, env._reserve_eids(1), 0, token=99)
        env.run()
        assert state["dispatched"] == [(0, 99)]
        assert env.events_processed == 1


class TestPeekAndRunDry:
    def test_peek_sees_calendar_head(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        _arm(state, 0, 2.5)
        cal.stage(np.array([0]), np.array([env._reserve_eids(1)]),
                  np.ones(1, dtype=np.int64))
        env.timeout(9.0)
        assert env.peek() == 2.5

    def test_run_until_event_raises_when_both_queues_dry(self):
        env = Environment()
        _manual_calendar(env)
        with pytest.raises(SimulationError, match="ran dry"):
            env.run(env.event())

    def test_run_until_deadline_stops_before_calendar_entry(self):
        env = Environment()
        cal, state = _manual_calendar(env)
        _arm(state, 0, 5.0)
        cal.stage(np.array([0]), np.array([env._reserve_eids(1)]),
                  np.ones(1, dtype=np.int64))
        env.run(until=3.0)
        assert env.now == 3.0
        assert state["dispatched"] == []
        env.run()
        assert state["dispatched"] == [(0, 1)]


class TestNetworkIntegration:
    def test_burst_of_same_instant_starts_is_one_rebuild(self):
        # N same-instant overlapping starts: each start stages, but the
        # calendar sorts once — and every superseded stage retires in
        # bulk instead of becoming a popped no-op event.
        env = Environment()
        net = FlowNetwork(env)
        link = Resource("l", 10.0)
        for i in range(8):
            net.start_flow([(link, FWD)], 10.0, label=f"f{i}")
        cal = env._calendar
        assert cal.dirty  # nothing rebuilt until the engine needs it
        # The first start is a single-flow fast path (side-heap push);
        # starts 2..8 each supersede the previous stage of 2..7 entries.
        assert cal.invalidated == sum(range(2, 8))
        env.run()
        assert not net.active_flows
