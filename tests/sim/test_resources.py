"""Unit tests of directional resources and sharing curves."""

import pytest

from repro.sim.resources import Direction, Resource, SharingCurve


class TestDirection:
    def test_flipped(self):
        assert Direction.FWD.flipped() is Direction.REV
        assert Direction.REV.flipped() is Direction.FWD


class TestSharingCurve:
    def test_default_is_flat(self):
        curve = SharingCurve()
        assert curve.factor(1) == 1.0
        assert curve.factor(100) == 1.0

    def test_step_and_hold(self):
        curve = SharingCurve({2: 0.95, 4: 0.82})
        assert curve.factor(1) == 1.0
        assert curve.factor(2) == 0.95
        assert curve.factor(3) == 0.95
        assert curve.factor(4) == 0.82
        assert curve.factor(9) == 0.82

    def test_zero_flows_is_neutral(self):
        assert SharingCurve({2: 0.5}).factor(0) == 1.0

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            SharingCurve({2: 0.0})
        with pytest.raises(ValueError):
            SharingCurve({2: 1.5})

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            SharingCurve({0: 0.9})


class TestResource:
    def test_symmetric_default(self):
        resource = Resource("r", capacity_fwd=10.0)
        assert resource.raw_capacity(Direction.FWD) == 10.0
        assert resource.raw_capacity(Direction.REV) == 10.0

    def test_asymmetric_capacities(self):
        resource = Resource("r", capacity_fwd=41.0, capacity_rev=35.0)
        assert resource.raw_capacity(Direction.FWD) == 41.0
        assert resource.raw_capacity(Direction.REV) == 35.0

    def test_duplex_applies_only_with_both_directions_busy(self):
        resource = Resource("r", 10.0, duplex_factor=0.5)
        assert resource.effective_capacity(Direction.FWD, 2, 0) == 10.0
        assert resource.effective_capacity(Direction.FWD, 1, 1) == 5.0
        assert resource.effective_capacity(Direction.REV, 1, 3) == 5.0

    def test_sharing_counts_total_flows(self):
        resource = Resource("r", 10.0, sharing=SharingCurve({4: 0.8}))
        assert resource.effective_capacity(Direction.FWD, 3, 0) == 10.0
        assert resource.effective_capacity(Direction.FWD, 4, 0) == 8.0
        assert resource.effective_capacity(Direction.FWD, 2, 2) == 8.0

    def test_duplex_and_sharing_compose(self):
        resource = Resource("r", 10.0, duplex_factor=0.5,
                            sharing=SharingCurve({2: 0.8}))
        assert resource.effective_capacity(Direction.FWD, 1, 1) == \
            pytest.approx(4.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", 0.0)
        with pytest.raises(ValueError):
            Resource("r", 10.0, capacity_rev=-1.0)
        with pytest.raises(ValueError):
            Resource("r", 10.0, duplex_factor=0.0)
        with pytest.raises(ValueError):
            Resource("r", 10.0, duplex_factor=1.5)

    def test_repr_mentions_name(self):
        assert "xbus" in repr(Resource("xbus", 41.0, 35.0))
