"""Unit tests of the span trace."""

import pytest

from repro.sim.trace import Trace


@pytest.fixture
def trace(env):
    return Trace(env)


class TestRecording:
    def test_record_defaults_end_to_now(self, env, trace):
        env.run(until=None)
        span = trace.record("Sort", "gpu0", start=0.0)
        assert span.end == env.now
        assert span.duration == env.now - 0.0

    def test_record_rejects_negative_span(self, env, trace):
        with pytest.raises(ValueError):
            trace.record("Sort", "gpu0", start=5.0, end=1.0)

    def test_span_context_manager(self, env, trace):
        with trace.span("Sort", "gpu0", bytes=100):
            pass
        assert trace.spans[0].phase == "Sort"
        assert trace.spans[0].bytes == 100

    def test_clear(self, trace):
        trace.record("A", "x", 0.0, end=1.0)
        trace.clear()
        assert trace.spans == []
        assert trace.phases() == []
        assert trace.phase_window("A") is None

    def test_clear_keeps_ids_unique(self, trace):
        first = trace.record("A", "x", 0.0, end=1.0)
        trace.clear()
        second = trace.record("A", "x", 0.0, end=1.0)
        assert second.id > first.id


class TestHierarchy:
    def test_fresh_ids_are_unique(self, trace):
        a = trace.record("A", "x", 0.0, end=1.0)
        b = trace.record("B", "x", 1.0, end=2.0)
        assert a.id != 0 and b.id != 0
        assert a.id != b.id

    def test_allocate_id_reserves_before_completion(self, trace):
        reserved = trace.allocate_id()
        later = trace.record("B", "x", 0.0, end=1.0)
        span = trace.record("A", "x", 0.0, end=2.0, id=reserved)
        assert span.id == reserved
        assert later.id != reserved

    def test_parent_stack_nests_spans(self, trace):
        root = trace.allocate_id()
        trace.push_parent(root)
        assert trace.current_parent == root
        child = trace.record("HtoD", "gpu0", 0.0, end=1.0)
        assert trace.pop_parent() == root
        orphan = trace.record("DtoH", "gpu0", 1.0, end=2.0)
        assert child.parent == root
        assert orphan.parent is None
        assert trace.current_parent is None

    def test_explicit_parent_wins_over_stack(self, trace):
        other = trace.allocate_id()
        trace.push_parent(trace.allocate_id())
        span = trace.record("A", "x", 0.0, end=1.0, parent=other)
        trace.pop_parent()
        assert span.parent == other

    def test_children_of(self, trace):
        root = trace.allocate_id()
        trace.push_parent(root)
        trace.record("HtoD", "gpu0", 0.0, end=1.0)
        trace.record("Sort", "gpu0", 1.0, end=2.0)
        trace.pop_parent()
        trace.record("Other", "gpu1", 0.0, end=1.0)
        children = trace.children_of(root)
        assert [span.phase for span in children] == ["HtoD", "Sort"]


class TestReductions:
    @pytest.fixture
    def populated(self, trace):
        trace.record("HtoD", "gpu0", 0.0, end=1.0, bytes=10)
        trace.record("HtoD", "gpu1", 0.5, end=2.0, bytes=10)
        trace.record("Sort", "gpu0", 1.0, end=3.0, bytes=20)
        trace.record("Sort", "gpu1", 2.0, end=4.0, bytes=20)
        return trace

    def test_phases_in_first_appearance_order(self, populated):
        assert populated.phases() == ["HtoD", "Sort"]

    def test_phase_window_spans_all_actors(self, populated):
        assert populated.phase_window("HtoD") == (0.0, 2.0)

    def test_phase_window_missing_phase(self, populated):
        assert populated.phase_window("Merge") is None

    def test_phase_durations_follow_paper_convention(self, populated):
        # A phase ends when the last GPU completes it.
        durations = populated.phase_durations()
        assert durations["HtoD"] == pytest.approx(2.0)
        assert durations["Sort"] == pytest.approx(3.0)

    def test_busy_time_per_actor(self, populated):
        assert populated.busy_time("gpu0") == pytest.approx(1.0 + 2.0)
        assert populated.busy_time("gpu0", phase="Sort") == pytest.approx(2.0)

    def test_total_bytes(self, populated):
        assert populated.total_bytes() == 60
        assert populated.total_bytes("HtoD") == 20
