"""Failure-path tests of the kernel, semaphores and in-flight copies.

The fault-injection subsystem leans on exactly these paths: failed
events propagating through conditions, defused failures staying silent,
semaphore tickets withdrawn mid-acquisition, and interrupted copies
leaving no engine slot or flow behind.
"""

import numpy as np
import pytest

from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span
from repro.runtime.sync import Semaphore
from repro.sim.engine import Interrupt


class TestConditionFailures:
    def test_any_of_failure_propagates(self, env):
        bad = env.event()

        def proc():
            yield env.any_of([env.timeout(10), bad])

        p = env.process(proc())
        bad.fail(ValueError("broken"))
        with pytest.raises(ValueError, match="broken"):
            env.run(p)

    def test_all_of_nested_failure_propagates(self, env):
        bad = env.event()

        def proc():
            yield env.all_of([env.timeout(1) | env.timeout(2), bad])

        p = env.process(proc())
        bad.fail(KeyError("inner"))
        with pytest.raises(KeyError):
            env.run(p)

    def test_unhandled_failure_reraised_from_step(self, env):
        event = env.event()
        event.fail(RuntimeError("nobody caught this"))
        with pytest.raises(RuntimeError, match="nobody caught this"):
            env.run()

    def test_defused_failure_is_not_reraised(self, env):
        event = env.event()
        event.fail(RuntimeError("defused"))
        event.defused = True
        env.run()  # must not raise

    def test_failure_after_any_of_triggered_needs_defusing(self, env):
        """The pattern ``abort_flow`` relies on: an event that fails
        *after* an AnyOf containing it already triggered is not consumed
        by the condition, so only ``defused`` keeps the kernel quiet."""
        slow = env.event()

        def proc():
            yield env.any_of([env.timeout(1), slow])

        p = env.process(proc())
        env.run(p)  # the timeout wins; ``slow`` is still pending
        slow.fail(ValueError("late loser"))
        slow.defused = True
        env.run()  # must not raise


class TestSemaphoreCancel:
    def test_cancel_queued_ticket_forgets_it(self, env):
        sem = Semaphore(env, capacity=1)
        held = sem.acquire()
        assert held.triggered
        queued = sem.acquire()
        assert not queued.triggered
        sem.cancel(queued)
        sem.release()
        # The cancelled waiter must not have consumed the freed slot.
        assert sem.available == 1

    def test_cancel_granted_ticket_releases_slot(self, env):
        sem = Semaphore(env, capacity=1)
        granted = sem.acquire()
        assert sem.available == 0
        sem.cancel(granted)
        assert sem.available == 1


class TestInterruptedCopy:
    def test_interrupt_midflight_restores_engines_and_removes_flow(self):
        machine = Machine(dgx_a100(), scale=1e6)
        device = machine.device(0)
        host = machine.host_buffer(np.zeros(1000, dtype=np.int64))
        dev = device.alloc(1000, np.int64, label="victim")
        env = machine.env

        proc = env.process(copy_async(machine, span(dev), span(host)))

        def attacker():
            yield env.timeout(0.01)  # well inside the scaled transfer
            assert len(machine.net.active_flows) == 1
            proc.interrupt("chaos")

        env.process(attacker())
        with pytest.raises(Interrupt):
            env.run()
        # The BaseException handler aborted the flow; the finally
        # clause released both engines (the seed leaked them).
        assert len(machine.net.active_flows) == 0
        assert machine.net.aborted_flows == 1
        assert device.engine_in.available == device.engine_in.capacity
        assert device.engine_out.available == device.engine_out.capacity
