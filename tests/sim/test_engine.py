"""Unit tests of the discrete-event kernel."""

import pytest

from repro.sim.engine import Environment, Interrupt, SimulationError


class TestEvent:
    def test_pending_event_has_no_value(self, env):
        event = env.event()
        assert not event.triggered
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_double_trigger_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_failed_event_propagates_to_process(self, env):
        event = env.event()
        caught = []

        def proc():
            try:
                yield event
            except ValueError as exc:
                caught.append(exc)

        env.process(proc())
        event.fail(ValueError("boom"))
        env.run()
        assert len(caught) == 1

    def test_unhandled_failure_raises_from_run(self, env):
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        def proc():
            yield env.timeout(5.0)
            return env.now

        p = env.process(proc())
        assert env.run(p) == 5.0

    def test_timeouts_fire_in_order(self, env):
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_timeout_carries_value(self, env):
        def proc():
            value = yield env.timeout(1.0, value="payload")
            return value

        assert env.run(env.process(proc())) == "payload"


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert env.run(env.process(proc())) == "done"

    def test_nested_yield_from(self, env):
        def inner():
            yield env.timeout(2)
            return 7

        def outer():
            value = yield from inner()
            return value * 2

        assert env.run(env.process(outer())) == 14
        assert env.now == 2

    def test_exception_propagates(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("inside")

        with pytest.raises(KeyError):
            env.run(env.process(proc()))

    def test_yield_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_process_is_alive_until_done(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_waiting_on_already_processed_event(self, env):
        event = env.event()
        event.succeed("early")
        env.run()  # processes the event

        def proc():
            value = yield event
            return value

        assert env.run(env.process(proc())) == "early"

    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

        def attacker(victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("stop it")

        v = env.process(victim())
        env.process(attacker(v))
        env.run(until=v)
        assert causes == ["stop it"]
        assert env.now == 1

    def test_interrupting_dead_process_raises(self, env):
        def quick():
            yield env.timeout(0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc():
            env.active_process.interrupt()
            yield env.timeout(1)

        with pytest.raises(SimulationError):
            env.run(env.process(proc()))


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(3, value="b")
            results = yield env.all_of([t1, t2])
            return sorted(results.values())

        assert env.run(env.process(proc())) == ["a", "b"]
        assert env.now == 3

    def test_any_of_fires_on_first(self, env):
        def proc():
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(10, value="slow")
            results = yield env.any_of([t1, t2])
            return list(results.values())

        assert env.run(env.process(proc())) == ["fast"]
        assert env.now == 1

    def test_operator_forms(self, env):
        def proc():
            yield env.timeout(1) & env.timeout(2)
            first = env.now
            yield env.timeout(1) | env.timeout(5)
            return (first, env.now)

        assert env.run(env.process(proc())) == (2, 3)

    def test_all_of_empty_succeeds_immediately(self, env):
        def proc():
            yield env.all_of([])
            return env.now

        assert env.run(env.process(proc())) == 0

    def test_all_of_failure_propagates(self, env):
        bad = env.event()

        def proc():
            yield env.all_of([env.timeout(1), bad])

        p = env.process(proc())
        bad.fail(ValueError("broken"))
        with pytest.raises(ValueError):
            env.run(p)

    def test_all_of_with_processed_events(self, env):
        done = env.event()
        done.succeed(1)
        env.run()

        def proc():
            yield env.all_of([done, env.timeout(2)])
            return env.now

        assert env.run(env.process(proc())) == 2


class TestEnvironmentRun:
    def test_run_until_time(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(5)
            fired.append(env.now)

        env.process(proc())
        env.run(until=3.0)
        assert env.now == 3.0
        assert not fired
        env.run(until=10.0)
        assert fired == [5.0]
        assert env.now == 10.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_run_drains_queue(self, env):
        hits = []

        def proc():
            yield env.timeout(1)
            hits.append(1)

        env.process(proc())
        env.run()
        assert hits == [1]

    def test_run_until_event_queue_dry_raises(self, env):
        never = env.event()
        with pytest.raises(SimulationError, match="ran dry"):
            env.run(until=never)

    def test_peek_reports_next_event_time(self, env):
        env.timeout(7.5)
        assert env.peek() == 7.5

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0


class TestReprs:
    def test_event_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)
