"""Capture golden traces for the determinism regression test.

Run from the repo root::

    PYTHONPATH=src python tests/sim/capture_golden.py > tests/sim/golden_determinism.json

The JSON records, for each reference sort run, the end-to-end duration,
the phase breakdown and every trace span (phase, actor, start, end,
bytes) with full float precision.  The committed golden was captured
from the pre-optimization allocator (the O(F^2) full-rescan
``FlowNetwork``), so matching it proves the incremental engine leaves
simulated time bit-identical.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.data import generate
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort

CASES = {
    # (algorithm, physical keys, logical billions)
    "het-dgx-2b": ("het", 200_000, 2.0),
    "p2p-dgx-2b": ("p2p", 200_000, 2.0),
    "het-dgx-512b-ooc": ("het", 100_000, 512.0),
}


def run_case(algorithm: str, physical: int, billions: float):
    scale = billions * 1e9 / physical
    machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    data = generate(physical, "uniform", np.int32, seed=42)
    sort = p2p_sort if algorithm == "p2p" else het_sort
    result = sort(machine, data)
    spans = sorted(
        [s.phase, s.actor, s.start, s.end, s.bytes]
        for s in machine.trace.spans)
    return {
        "duration": result.duration,
        "phases": result.phase_durations,
        "spans": spans,
    }


def main() -> None:
    record = {name: run_case(*args) for name, args in CASES.items()}
    json.dump(record, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
