"""Regression: simulated results are bit-identical to the seed engine.

``golden_determinism.json`` was captured (via ``capture_golden.py``)
from the pre-optimization simulator — the full-rescan allocator with
per-flow watcher processes.  The incremental engine is required to
reproduce every simulated timestamp *exactly* (plain ``==`` on floats,
no tolerance): its fast paths and persistent indices must be pure
reorganizations of the same arithmetic, never approximations of it.
"""

import json
from pathlib import Path

import pytest

from tests.sim.capture_golden import CASES, run_case

GOLDEN_PATH = Path(__file__).parent / "golden_determinism.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("case", sorted(CASES))
def test_simulated_results_match_seed_bit_exactly(case, golden):
    expected = golden[case]
    actual = run_case(*CASES[case])
    # Durations and phase breakdowns: exact float equality.
    assert actual["duration"] == expected["duration"]
    assert actual["phases"] == expected["phases"]
    # Every trace span: phase, actor, start, end, bytes — all exact.
    assert len(actual["spans"]) == len(expected["spans"])
    for got, want in zip(actual["spans"], expected["spans"]):
        assert got == want


def test_golden_covers_all_cases(golden):
    assert sorted(golden) == sorted(CASES)
