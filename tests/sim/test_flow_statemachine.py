"""Stateful property testing of the flow network.

A hypothesis rule-based machine drives the network through arbitrary
interleavings of flow arrivals and time advances, checking the fluid
model's conservation laws at every step.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.engine import Environment
from repro.sim.flows import FlowNetwork
from repro.sim.resources import Direction, Resource


class FlowNetworkMachine(RuleBasedStateMachine):
    """Random arrivals over a two-link topology, with invariants."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.net = FlowNetwork(self.env)
        self.link_a = Resource("a", 10.0, duplex_factor=0.8)
        self.link_b = Resource("b", 4.0)
        self.offered = 0.0
        self.flows = []

    @rule(size=st.floats(0.5, 50.0),
          route=st.sampled_from(["a", "b", "ab", "a_rev"]))
    def start_flow(self, size, route):
        hops = {
            "a": [(self.link_a, Direction.FWD)],
            "a_rev": [(self.link_a, Direction.REV)],
            "b": [(self.link_b, Direction.FWD)],
            "ab": [(self.link_a, Direction.FWD),
                   (self.link_b, Direction.FWD)],
        }[route]
        self.flows.append(self.net.start_flow(hops, size))
        self.offered += size

    @rule(delay=st.floats(0.1, 20.0))
    def advance_time(self, delay):
        deadline = self.env.now + delay
        self.env.run(until=deadline)

    @invariant()
    def rates_never_exceed_capacity(self):
        for link, cap in ((self.link_a, 10.0), (self.link_b, 4.0)):
            for direction in Direction:
                assert self.net.utilization(link, direction) <= cap + 1e-6

    @invariant()
    def remaining_is_never_negative(self):
        for flow in self.flows:
            assert flow.remaining >= -1e-9
            assert flow.remaining <= flow.size + 1e-9

    @invariant()
    def finished_flows_triggered_their_events(self):
        for flow in self.flows:
            if flow.finished_at is not None:
                assert flow.done.triggered
                assert flow.remaining == 0.0

    def teardown(self):
        # Drain everything and check total conservation.
        if not self.flows:
            return
        done = [f.done for f in self.flows]

        def waiter():
            yield self.env.all_of(done)

        self.env.run(self.env.process(waiter()))
        delivered = sum(f.size for f in self.flows
                        if f.finished_at is not None)
        assert delivered == pytest.approx(self.offered, rel=1e-6)


FlowNetworkMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestFlowNetworkStateful = FlowNetworkMachine.TestCase
