"""Edge cases of the incremental flow allocator.

These tests pin down behaviours at the boundaries the optimized
implementation must preserve: zero-byte flows racing real ones,
epsilon-residual completion, rate caps tighter than every bottleneck,
utilization and delivered accounting across partial completions, the
disjoint-route fast paths, and the zero-capacity diagnostics.
"""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.resources import Direction, Resource

FWD, REV = Direction.FWD, Direction.REV


class _DeadResource(Resource):
    """A resource whose effective capacity collapses to zero under load."""

    __slots__ = ()

    def effective_capacity(self, direction, flows_this_direction,
                           flows_other_direction):
        return 0.0


class TestZeroByteFlows:
    def test_zero_byte_flow_races_nonzero(self, env, net):
        link = Resource("l", 10.0)
        big = net.start_flow([(link, FWD)], 50.0)
        reallocs_before = net.full_reallocations
        zero = net.start_flow([(link, FWD)], 0.0)
        # The zero-byte flow completes instantly and never enters the
        # allocator: the big flow's rate is untouched.
        assert zero.done.triggered
        assert zero.finished_at == env.now == 0.0
        assert net.full_reallocations == reallocs_before
        assert big.rate == pytest.approx(10.0)
        env.run()
        assert big.finished_at == pytest.approx(5.0)

    def test_sub_epsilon_flow_finishes_promptly(self, env, net):
        link = Resource("l", 10.0)
        tiny = net.start_flow([(link, FWD)], 1e-8)
        # Non-zero: completes through the engine, not synchronously...
        assert not tiny.done.triggered
        env.run()
        # ...but essentially immediately, and exactly.
        assert tiny.finished_at == env.now
        assert env.now <= 1e-8
        assert tiny.remaining == 0.0


class TestEpsilonResidual:
    def test_irrational_duration_finishes_exactly(self, env, net):
        # 10/3 seconds is not representable; the scheduled completion
        # leaves an ulp-scale residual that must be forgiven.
        link = Resource("l", 3.0)
        flow = net.start_flow([(link, FWD)], 10.0)
        env.run()
        assert flow.remaining == 0.0
        assert flow.finished_at == env.now
        assert env.now == pytest.approx(10.0 / 3.0)
        assert net.active_flows == []
        assert net.delivered[(link, FWD)] == pytest.approx(10.0)

    def test_residual_after_mid_flight_reallocation(self, env, net):
        # A reallocation mid-flight replaces the completion schedule;
        # the re-derived remaining bytes accumulate rounding the
        # epsilon force-finish must absorb.
        link = Resource("l", 3.0)
        a = net.start_flow([(link, FWD)], 10.0)

        def competitor():
            yield env.timeout(1.0)
            b = net.start_flow([(link, FWD)], 1.0)
            yield b.done

        env.process(competitor())
        env.run()
        # 1 s alone at 3.0 (7 left), then shared at 1.5 each for 2/3 s
        # (6 left), then alone at 3.0 again: done at 5/3 + 2 = 11/3.
        assert a.remaining == 0.0
        assert a.finished_at == pytest.approx(11.0 / 3.0)
        assert net.delivered[(link, FWD)] == pytest.approx(11.0)


class TestRateCaps:
    def test_cap_tighter_than_every_bottleneck(self, env, net):
        l1, l2 = Resource("l1", 10.0), Resource("l2", 20.0)
        flow = net.start_flow([(l1, FWD), (l2, FWD)], 10.0, rate_cap=2.0)
        assert flow.rate == pytest.approx(2.0)
        env.run()
        assert env.now == pytest.approx(5.0)

    def test_capped_flow_leaves_leftover_to_sharer(self, env, net):
        link = Resource("l", 10.0)
        capped = net.start_flow([(link, FWD)], 8.0, rate_cap=2.0)
        free = net.start_flow([(link, FWD)], 8.0)
        assert capped.rate == pytest.approx(2.0)
        assert free.rate == pytest.approx(8.0)
        env.run()
        assert free.finished_at == pytest.approx(1.0)
        assert capped.finished_at == pytest.approx(4.0)


class TestPartialCompletions:
    def test_utilization_tracks_partial_completion(self, env, net):
        link = Resource("l", 10.0)
        short = net.start_flow([(link, FWD)], 10.0)
        long = net.start_flow([(link, FWD)], 50.0)
        assert net.utilization(link, FWD) == pytest.approx(10.0)
        env.run(short.done)
        # The survivor was re-allocated the full link.
        assert short not in net.active_flows
        assert long in net.active_flows
        assert net.utilization(link, FWD) == pytest.approx(10.0)
        assert long.rate == pytest.approx(10.0)
        env.run()
        assert net.utilization(link, FWD) == 0.0

    def test_delivered_is_exact_mid_flight(self, env, net):
        link = Resource("l", 10.0)
        net.start_flow([(link, FWD)], 50.0)

        def probe():
            yield env.timeout(2.0)
            assert net.delivered[(link, FWD)] == pytest.approx(20.0)
            yield env.timeout(1.0)
            assert net.delivered[(link, FWD)] == pytest.approx(30.0)

        env.process(probe())
        env.run()
        assert net.delivered[(link, FWD)] == pytest.approx(50.0)


class TestFastPaths:
    def test_disjoint_flows_never_water_fill(self, env, net):
        l1, l2 = Resource("a", 5.0), Resource("b", 4.0)
        f1 = net.start_flow([(l1, FWD)], 10.0)
        f2 = net.start_flow([(l2, FWD)], 10.0)
        assert net.fast_starts == 2
        assert net.full_reallocations == 0
        assert f1.rate == pytest.approx(5.0)
        assert f2.rate == pytest.approx(4.0)
        env.run()
        assert net.fast_finishes == 2
        assert net.full_reallocations == 0
        assert f1.finished_at == pytest.approx(2.0)
        assert f2.finished_at == pytest.approx(2.5)

    def test_opposite_directions_are_not_disjoint(self, env, net):
        # FWD and REV of one resource interact through the duplex
        # factor, so the second start must take the full path.
        link = Resource("l", 10.0, duplex_factor=0.8)
        fwd = net.start_flow([(link, FWD)], 8.0)
        assert fwd.rate == pytest.approx(10.0)
        rev = net.start_flow([(link, REV)], 8.0)
        assert net.full_reallocations == 1
        assert fwd.rate == pytest.approx(8.0)
        assert rev.rate == pytest.approx(8.0)

    def test_overlapping_flows_fall_back_to_water_fill(self, env, net):
        link = Resource("l", 10.0)
        net.start_flow([(link, FWD)], 10.0)
        net.start_flow([(link, FWD)], 10.0)
        assert net.fast_starts == 1
        assert net.full_reallocations == 1
        env.run()
        # Both finish in the same sweep; the removal is disjoint.
        assert net.fast_finishes == 1
        assert net.full_reallocations == 1


class TestZeroCapacityDiagnostics:
    def test_water_fill_names_the_dead_resource(self, env, net):
        good = Resource("good", 10.0)
        dead = _DeadResource("dead", 10.0)
        net.start_flow([(good, FWD)], 10.0)
        with pytest.raises(SimulationError, match="dead.*victim"):
            net.start_flow([(good, FWD), (dead, FWD)], 5.0, label="victim")

    def test_fast_path_reports_zero_bandwidth(self, env, net):
        dead = _DeadResource("dead", 10.0)
        with pytest.raises(SimulationError, match="zero bandwidth"):
            net.start_flow([(dead, FWD)], 5.0, label="victim")
