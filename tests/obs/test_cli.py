"""End-to-end ``python -m repro.obs`` subcommand tests (quick runs)."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main

_AC922_P2P = ["--quick", "--system", "ibm-ac922", "--algorithm", "p2p",
              "--keys", "1e8", "--seed", "42"]


class TestTimeline:
    def test_writes_perfetto_json(self, tmp_path, capsys):
        path = tmp_path / "timeline.json"
        assert main(["timeline", *_AC922_P2P, "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "timeline written to" in out
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        # Metadata rows, slices, counter tracks.
        assert {"M", "X", "C"} <= phases
        counter_names = {event["name"] for event in events
                         if event["ph"] == "C"}
        assert any(name.startswith("bw xbus_0_1") for name in counter_names)
        assert "active flows" in counter_names

    def test_faulted_run_carries_fault_markers(self, tmp_path):
        # Default 2e9 logical keys: the run is long enough for the
        # generated plan's windows (inside --fault-horizon) to overlap.
        path = tmp_path / "timeline.json"
        assert main(["timeline", "--quick", "--system", "ibm-ac922",
                     "--algorithm", "het", "--seed", "42",
                     "--faults", "1.0", "-o", str(path)]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        assert any(event["ph"] == "i" for event in events)


class TestLinks:
    def test_xbus_is_the_hottest_link_during_exchange(self, capsys):
        # The paper's headline observation on the AC922: the X-Bus is
        # the binding link while partitions cross the socket boundary
        # (the Merge/exchange phase of the P2P sort).
        assert main(["links", *_AC922_P2P, "--phase", "Merge"]) == 0
        out = capsys.readouterr().out
        assert "hottest: xbus_0_1" in out

    def test_whole_run_table_renders(self, capsys):
        assert main(["links", *_AC922_P2P, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth over time" in out
        lines = out.splitlines()
        separator = next(i for i, line in enumerate(lines)
                         if line.startswith("---"))
        rows = []
        for line in lines[separator + 1:]:
            if not line.strip():
                break
            rows.append(line)
        assert len(rows) == 3

    def test_unknown_phase_fails_with_hint(self, capsys):
        assert main(["links", *_AC922_P2P, "--phase", "Nope"]) == 1
        err = capsys.readouterr().err
        assert "no phase 'Nope'" in err
        assert "Merge" in err


class TestSummary:
    def test_rollup_sections_present(self, capsys):
        assert main(["summary", *_AC922_P2P]) == 0
        out = capsys.readouterr().out
        assert "phases (wall = last end - first start)" in out
        assert "actor busy seconds by phase" in out
        assert "links (whole run)" in out
        assert "copy-engine occupancy" in out
        assert "flows.started=" in out
        for phase in ("HtoD", "Sort", "Merge", "DtoH"):
            assert phase in out

    def test_dgx_eight_gpu_smoke(self, capsys):
        assert main(["summary", "--quick", "--keys", "1e8"]) == 0
        out = capsys.readouterr().out
        assert "p2p sort on NVIDIA DGX A100" in out
        assert "GPUs (0, 1, 2, 3, 4, 5, 6, 7)" in out


class TestService:
    _EPISODE = ["--quick", "--system", "ibm-ac922", "--keys", "1e8",
                "--seed", "42", "--service", "6"]

    def test_summary_lists_jobs(self, capsys):
        assert main(["summary", *self._EPISODE]) == 0
        out = capsys.readouterr().out
        assert "service episode on IBM Power System AC922" in out
        assert "6 offered" in out
        assert "jobs (filter with --job tenant/id)" in out

    def test_summary_job_filter_rolls_up_one_job(self, capsys):
        assert main(["summary", *self._EPISODE]) == 0
        out = capsys.readouterr().out
        label = next(line.split()[0] for line in out.splitlines()
                     if line.startswith(("acme/", "globex/", "initech/"))
                     and " completed " in line)
        assert main(["summary", *self._EPISODE, "--job", label]) == 0
        out = capsys.readouterr().out
        assert f"phases of job {label}" in out
        assert "SupervisedSort" in out
        assert f"job:{label}" in out
        assert "links during the job's window" in out

    def test_summary_unknown_job_fails_with_known_labels(self, capsys):
        assert main(["summary", *self._EPISODE,
                     "--job", "nobody/99"]) == 1
        err = capsys.readouterr().err
        assert "no job 'nobody/99'" in err

    def test_timeline_job_filter_writes_only_job_spans(self, tmp_path,
                                                       capsys):
        path = tmp_path / "job.json"
        whole = tmp_path / "whole.json"
        assert main(["timeline", *self._EPISODE,
                     "-o", str(whole)]) == 0
        out = capsys.readouterr().out
        assert "service episode on IBM Power System AC922" in out
        document = json.loads(whole.read_text())
        job_rows = {event["args"]["name"]
                    for event in document["traceEvents"]
                    if event["ph"] == "M"
                    and event.get("args", {}).get("name",
                                                  "").startswith("job:")}
        assert len(job_rows) >= 1
        label = sorted(job_rows)[0][len("job:"):]
        assert main(["timeline", *self._EPISODE, "--job", label,
                     "-o", str(path)]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        # No counter tracks in a per-job timeline.
        assert not any(e["ph"] == "C" for e in events)

    def test_job_without_service_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["summary", "--quick", "--job", "acme/0"])

    def test_service_needs_a_positive_count(self):
        with pytest.raises(SystemExit):
            main(["summary", "--quick", "--service", "0"])


class TestArgs:
    def test_gpu_list_parses(self, capsys):
        assert main(["summary", "--quick", "--keys", "1e7",
                     "--gpus", "0,1"]) == 0
        assert "GPUs (0, 1)" in capsys.readouterr().out

    def test_bad_gpu_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["summary", "--gpus", "zero,one"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
