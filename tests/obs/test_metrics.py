"""Counter / gauge / histogram / registry unit tests."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)

    def test_to_dict(self):
        counter = Counter("c")
        counter.inc(4)
        assert counter.to_dict() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_tracks_extremes(self):
        gauge = Gauge("g")
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert gauge.value == 7.0
        assert gauge.min == -1.0
        assert gauge.max == 7.0
        assert gauge.updates == 3

    def test_add_adjusts_current(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_untouched_gauge_reports_no_extremes(self):
        snapshot = Gauge("g").to_dict()
        assert snapshot["min"] is None
        assert snapshot["max"] is None


class TestHistogram:
    def test_bucketing_and_mean(self):
        histogram = Histogram("h", bounds=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(55.5 / 3)
        assert histogram.min == 0.5
        assert histogram.max == 50.0

    def test_boundary_value_lands_in_lower_bucket(self):
        histogram = Histogram("h", bounds=[1.0, 10.0])
        histogram.observe(1.0)
        assert histogram.counts == [1, 0, 0]

    def test_requires_strictly_increasing_bounds(self):
        with pytest.raises(ReproError):
            Histogram("h", bounds=[1.0, 1.0])
        with pytest.raises(ReproError):
            Histogram("h", bounds=[2.0, 1.0])
        with pytest.raises(ReproError):
            Histogram("h", bounds=[])

    def test_quantile_is_monotone_and_bounded(self):
        histogram = Histogram("h", bounds=DEFAULT_BOUNDS)
        for value in (1e-5, 1e-3, 0.5, 0.5, 2.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q)
                     for q in (0.0, 0.25, 0.5, 0.9, 1.0)]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] <= histogram.max + 10.0
        with pytest.raises(ReproError):
            histogram.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", bounds=[1.0]).quantile(0.5) == 0.0
        assert Histogram("h", bounds=[1.0]).quantile(0.0) == 0.0
        assert Histogram("h", bounds=[1.0]).quantile(1.0) == 0.0

    def test_extreme_quantiles_return_observed_extremes(self):
        histogram = Histogram("h", bounds=DEFAULT_BOUNDS)
        for value in (0.2, 0.4, 0.9):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.2
        assert histogram.quantile(1.0) == 0.9

    def test_single_bucket_quantile_never_exceeds_max(self):
        # All mass in one bucket: the bucket's upper bound may overshoot
        # the largest observation, so the estimate must clamp to max.
        histogram = Histogram("h", bounds=[100.0])
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        for q in (0.1, 0.5, 0.99):
            assert histogram.quantile(q) == 3.0

    def test_overflow_bucket_quantile_clamps_to_max(self):
        histogram = Histogram("h", bounds=[1.0])
        histogram.observe(5.0)
        assert histogram.quantile(0.5) == 5.0


class TestPrometheusText:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("flows.started").inc(3)
        registry.gauge("queue.depth").set(2.0)
        registry.gauge("queue.depth").set(5.0)
        registry.histogram("latency_s", bounds=[0.1, 1.0]).observe(0.05)
        registry.histogram("latency_s").observe(0.5)
        registry.histogram("latency_s").observe(3.0)
        return registry.snapshot()

    def test_counters_get_total_suffix(self):
        text = prometheus_text(self._snapshot())
        assert "flows_started_total 3.0" in text
        assert "# TYPE flows_started_total counter" in text

    def test_gauges_carry_min_max_companions(self):
        text = prometheus_text(self._snapshot())
        assert "queue_depth 5.0" in text
        assert "queue_depth_min 2.0" in text
        assert "queue_depth_max 5.0" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(self._snapshot())
        assert 'latency_s_bucket{le="0.1"} 1' in text
        assert 'latency_s_bucket{le="1.0"} 2' in text
        assert 'latency_s_bucket{le="+Inf"} 3' in text
        assert "latency_s_count 3" in text
        assert "latency_s_sum" in text

    def test_names_are_mangled_to_the_legal_charset(self):
        registry = MetricsRegistry()
        registry.counter("1weird metric-name!").inc()
        text = prometheus_text(registry.snapshot())
        assert "_1weird_metric_name__total 1.0" in text

    def test_output_ends_with_newline(self):
        assert prometheus_text(self._snapshot()).endswith("\n")
        assert prometheus_text({}) == ""


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert "b" not in registry

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ReproError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.gauge("z").set(1.0)
        registry.counter("a").inc()
        registry.histogram("m").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "m", "z"]
        assert snapshot["a"]["type"] == "counter"
        assert snapshot["m"]["type"] == "histogram"
        assert snapshot["z"]["type"] == "gauge"
