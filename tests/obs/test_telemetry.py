"""Derived telemetry: sparklines, link series math, occupancy."""

from __future__ import annotations

import pytest

from repro.obs.events import EngineAcquire, EngineRelease, LinkRate
from repro.obs.recorder import FlowRecord, Recorder
from repro.obs.telemetry import (
    LinkReport,
    LinkSeries,
    engine_occupancy,
    flow_count_series,
    link_report,
    link_series,
    sparkline,
    tier_summary,
)


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=10)) == 10

    def test_empty_series_is_blank(self):
        assert sparkline([], width=5) == "     "

    def test_zero_peak_renders_floor(self):
        assert sparkline([0.0, 0.0], width=4) == "    "

    def test_monotone_series_ramps_up(self):
        line = sparkline([float(i) for i in range(1, 9)], width=8)
        assert line == "▁▂▃▄▅▆▇█"

    def test_spikes_survive_downsampling(self):
        # Max-per-bin resampling: one full-rate sample among zeros must
        # still produce a full block somewhere.
        values = [0.0] * 100
        values[37] = 1.0
        assert "█" in sparkline(values, width=10)

    def test_peak_overrides_normalization(self):
        assert sparkline([0.5], width=1, peak=1.0) == "▄"

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


def _series(points, capacity=10.0):
    return LinkSeries(link="l", direction="fwd", points=points,
                      capacity=capacity)


class TestLinkSeries:
    def test_rate_at_is_a_step_function(self):
        series = _series([(1.0, 4.0), (3.0, 0.0)])
        assert series.rate_at(0.5) == 0.0
        assert series.rate_at(1.0) == 4.0
        assert series.rate_at(2.9) == 4.0
        assert series.rate_at(3.0) == 0.0

    def test_integrate_is_exact(self):
        series = _series([(1.0, 4.0), (3.0, 2.0), (5.0, 0.0)])
        # 2s at 4 B/s + 2s at 2 B/s = 12 bytes.
        assert series.integrate(0.0, 6.0) == pytest.approx(12.0)
        # Partial windows clip on both sides: [2, 4] = 1s@4 + 1s@2.
        assert series.integrate(2.0, 4.0) == pytest.approx(6.0)
        assert series.integrate(4.0, 4.0) == 0.0

    def test_mean_rate(self):
        series = _series([(0.0, 4.0), (2.0, 0.0)])
        assert series.mean_rate(0.0, 4.0) == pytest.approx(2.0)

    def test_peak_global_vs_windowed(self):
        series = _series([(0.0, 8.0), (1.0, 2.0), (5.0, 0.0)])
        assert series.peak == 8.0
        assert series.peak_in(2.0, 6.0) == 2.0
        # A window opening mid-step sees the rate carried into it.
        assert series.peak_in(0.5, 0.9) == 8.0

    def test_busy_and_saturation_windows(self):
        series = _series([(0.0, 9.6), (2.0, 5.0), (3.0, 9.5), (4.0, 0.0)])
        assert series.busy_windows(9.5) == [(0.0, 2.0), (3.0, 4.0)]
        assert series.saturation_windows(0.95) == [(0.0, 2.0), (3.0, 4.0)]

    def test_still_open_window_closes_at_last_point(self):
        series = _series([(0.0, 9.6)])
        assert series.busy_windows(9.5) == [(0.0, 0.0)]

    def test_zero_capacity_never_saturates(self):
        series = _series([(0.0, 5.0)], capacity=0.0)
        assert series.saturation_windows() == []

    def test_samples_feed_the_sparkline(self):
        series = _series([(0.0, 4.0), (2.0, 0.0)])
        assert series.samples(buckets=4, start=0.0, end=4.0) == \
            pytest.approx([4.0, 4.0, 0.0, 0.0])
        assert series.samples(buckets=0) == []


class TestLinkReport:
    def _recorder(self):
        recorder = Recorder()
        # Link a: pinned at 80% the whole run.  Link b: brief 100% spike.
        for t, link, rate in ((0.0, "a", 8.0), (0.0, "b", 0.0),
                              (4.0, "b", 10.0), (4.5, "b", 0.0),
                              (10.0, "a", 0.0)):
            recorder._emit(LinkRate(t, link, "fwd", rate, capacity=10.0))
        return recorder

    def test_mean_utilization_ranks_hotter_than_peak(self):
        reports = link_report(self._recorder())
        assert [r.link for r in reports] == ["a", "b"]
        assert reports[0].mean_utilization == pytest.approx(0.8)
        assert reports[1].peak_utilization == pytest.approx(1.0)

    def test_window_scoping_flips_the_ranking(self):
        reports = link_report(self._recorder(), start=4.0, end=4.5)
        assert reports[0].link == "b"
        assert reports[0].peak == 10.0

    def test_saturation_windows_clip_to_bounds(self):
        reports = link_report(self._recorder(), start=4.25, end=10.0)
        spiked = next(r for r in reports if r.link == "b")
        assert spiked.windows == [(4.25, 4.5)]
        assert spiked.saturated_s == pytest.approx(0.25)

    def test_bytes_match_integration(self):
        reports = link_report(self._recorder())
        pinned = next(r for r in reports if r.link == "a")
        assert pinned.bytes == pytest.approx(80.0)

    def test_link_series_tracks_capacity_changes(self):
        recorder = Recorder()
        recorder._emit(LinkRate(0.0, "a", "fwd", 5.0, capacity=10.0))
        recorder._emit(LinkRate(1.0, "a", "fwd", 2.0, capacity=5.0))
        series = link_series(recorder)[("a", "fwd")]
        assert series.capacity == 5.0
        assert series.points == [(0.0, 5.0), (1.0, 2.0)]


class _FakeSemaphore:
    def __init__(self, label, in_use, waiting=0):
        self.label = label
        self._in_use = in_use
        self._waiters = [None] * waiting


class TestEngineOccupancy:
    def test_busy_fraction(self):
        recorder = Recorder()
        recorder.engine_acquired(_FakeSemaphore("dma", 1), 1.0)
        recorder.engine_released(_FakeSemaphore("dma", 0), 3.0)
        recorder.last_time = 4.0
        assert engine_occupancy(recorder) == {"dma": pytest.approx(0.5)}

    def test_overlapping_holds_merge(self):
        recorder = Recorder()
        recorder.engine_acquired(_FakeSemaphore("dma", 1), 0.0)
        recorder.engine_acquired(_FakeSemaphore("dma", 2), 1.0)
        recorder.engine_released(_FakeSemaphore("dma", 1), 2.0)
        recorder.engine_released(_FakeSemaphore("dma", 0), 4.0)
        recorder.last_time = 4.0
        assert engine_occupancy(recorder) == {"dma": pytest.approx(1.0)}

    def test_still_held_extends_to_horizon(self):
        recorder = Recorder()
        recorder.engine_acquired(_FakeSemaphore("dma", 1), 1.0)
        recorder.last_time = 5.0
        assert engine_occupancy(recorder) == {"dma": pytest.approx(0.8)}

    def test_empty_recorder(self):
        assert engine_occupancy(Recorder()) == {}


class TestFlowCountSeries:
    def test_step_series_from_lifecycles(self):
        recorder = Recorder()
        a = FlowRecord(1, "a", 10.0, 0.0, ())
        a.end = 2.0
        b = FlowRecord(2, "b", 10.0, 1.0, ())
        b.end = 3.0
        in_flight = FlowRecord(3, "c", 10.0, 1.0, ())
        recorder.flows.extend([a, b, in_flight])
        assert flow_count_series(recorder) == [
            (0.0, 1), (1.0, 3), (2.0, 2), (3.0, 1)]


class TestTierSummary:
    @staticmethod
    def _report(link, peak, mean, bytes_):
        return LinkReport(link=link, direction="a->b", peak=peak,
                          mean=mean, capacity=100.0, bytes=bytes_,
                          saturated_s=0.0)

    def test_rollup_per_tier(self):
        tier_of = lambda name: "inter" if "nic" in name else "intra"
        reports = [
            self._report("n0_nic0_link", peak=90.0, mean=50.0, bytes_=3e9),
            self._report("n1_nic0_link", peak=60.0, mean=30.0, bytes_=1e9),
            self._report("nvlink_0_1", peak=40.0, mean=20.0, bytes_=2e9),
        ]
        tiers = tier_summary(reports, tier_of)
        assert set(tiers) == {"inter", "intra"}
        inter = tiers["inter"]
        assert inter["links"] == 2
        assert inter["bytes"] == pytest.approx(4e9)
        assert inter["peak_utilization"] == pytest.approx(0.9)
        # Byte-weighted mean: (0.5 * 3 + 0.3 * 1) / 4.
        assert inter["mean_utilization"] == pytest.approx(0.45)
        assert tiers["intra"]["links"] == 1

    def test_empty_reports(self):
        assert tier_summary([], lambda name: "intra") == {}
