"""Event taxonomy: kinds, payloads, serialization."""

from __future__ import annotations

from repro.obs.events import (
    EngineAcquire,
    EngineRelease,
    EngineSample,
    FaultClose,
    FaultOpen,
    FlowAbort,
    FlowRetire,
    FlowStart,
    KernelLaunch,
    LinkRate,
    StreamOp,
)

_ALL = (FlowStart, FlowRetire, FlowAbort, LinkRate, EngineAcquire,
        EngineRelease, FaultOpen, FaultClose, KernelLaunch, StreamOp,
        EngineSample)


class TestTaxonomy:
    def test_kinds_are_distinct(self):
        kinds = [cls.kind for cls in _ALL]
        assert len(kinds) == len(set(kinds))

    def test_every_slot_lands_in_to_dict(self):
        event = FlowStart(1.5, fid=7, label="copy", size=1e6, rate=2e9,
                          links=("nvlink_0", "nvlink_1"))
        record = event.to_dict()
        assert record == {
            "kind": "flow_start", "t": 1.5, "fid": 7, "label": "copy",
            "size": 1e6, "rate": 2e9, "links": ("nvlink_0", "nvlink_1"),
            "parent_span": None,
        }

    def test_parent_span_is_mutable_for_backpatching(self):
        event = FlowStart(0.0, fid=1, label="x", size=1.0, rate=1.0,
                          links=())
        event.parent_span = 42
        assert event.to_dict()["parent_span"] == 42

    def test_fault_open_marks_instant(self):
        window = FaultOpen(2.0, "link_down", "xbus_0_1")
        instant = FaultOpen(2.0, "gpu_reset", "gpu3", instant=True)
        assert window.to_dict()["instant"] is False
        assert instant.to_dict()["instant"] is True

    def test_fault_close_keeps_open_time(self):
        event = FaultClose(3.0, "link_down", "xbus_0_1", opened=2.0)
        assert event.to_dict()["opened"] == 2.0

    def test_link_rate_carries_saturation_reference(self):
        event = LinkRate(1.0, "xbus_0_1", "fwd", rate=30e9, capacity=41e9)
        record = event.to_dict()
        assert record["rate"] == 30e9
        assert record["capacity"] == 41e9
