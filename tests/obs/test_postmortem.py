"""Post-mortem bundles: dumped on terminal failures, renderable offline.

The contract under test: when a supervised sort dies terminally, the
supervisor freezes a self-contained JSON bundle whose critical path
carries the *failing phase* — even though that phase's spans never
closed — and ``repro.obs postmortem`` can render it with no access to
the original run.  Dumping must never raise into the failing run, and
bundle filenames must be deterministic (same failure, same name).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.data import generate
from repro.errors import RecoveryError, ReproError
from repro.faults import FaultPlan
from repro.faults.events import GpuFail, StragglerGpu
from repro.hw import dgx_a100, ibm_ac922
from repro.obs.postmortem import (
    BUNDLE_VERSION,
    build_bundle,
    load_bundle,
    render_bundle,
    write_bundle,
)
from repro.recovery import SortSupervisor, SupervisorConfig
from repro.runtime import Machine
from repro.serve import JobSpec, ServiceConfig, SortService


def _doomed_run(tmp_path, flight_recorder=False):
    """A supervised sort with no replan budget and a mid-run GPU kill."""
    machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
    if flight_recorder:
        from repro.obs.recorder import Recorder, RingConfig

        machine.enable_observability(Recorder(ring=RingConfig()))
    else:
        machine.enable_observability()
    machine.install_faults(FaultPlan(events=(GpuFail(at=0.004, gpu=3),)))
    supervisor = SortSupervisor(
        machine, SupervisorConfig(max_replans=0,
                                  postmortem_dir=str(tmp_path)))
    data = generate(65536, "uniform", seed=3)
    with pytest.raises(RecoveryError):
        supervisor.sort(data, algorithm="p2p")
    return machine, supervisor


class TestFailureBundle:
    @pytest.fixture(scope="class")
    def dumped(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("pm")
        machine, supervisor = _doomed_run(tmp_path)
        return tmp_path, machine, supervisor

    def test_supervisor_dumps_exactly_one_bundle(self, dumped):
        tmp_path, _machine, supervisor = dumped
        assert len(supervisor.postmortems) == 1
        assert os.path.exists(supervisor.postmortems[0])

    def test_bundle_is_versioned_and_provenance_stamped(self, dumped):
        _tmp, _machine, supervisor = dumped
        bundle = load_bundle(supervisor.postmortems[0])
        assert bundle["bundle_version"] == BUNDLE_VERSION
        assert bundle["kind"] == "failure"
        assert bundle["error"]["type"] == "RecoveryError"
        assert "provenance" in bundle

    def test_failing_phase_is_on_the_critical_path(self, dumped):
        _tmp, _machine, supervisor = dumped
        bundle = load_bundle(supervisor.postmortems[0])
        failing = bundle["error"]["phase"]
        assert failing  # the supervisor knew what it was running
        path = bundle["critical_path"]
        assert path is not None
        phases = {seg["phase"] for seg in path["segments"]}
        assert failing in phases
        # The partition invariant holds in the serialized form too.
        covered = sum(seg["duration"] for seg in path["segments"])
        assert covered == pytest.approx(path["wall_s"], rel=1e-6)

    def test_fault_timeline_records_the_kill(self, dumped):
        _tmp, machine, supervisor = dumped
        bundle = load_bundle(supervisor.postmortems[0])
        kills = [w for w in bundle["fault_timeline"]
                 if w["kind"] == "gpu_fail"]
        assert kills and kills[0]["start"] == pytest.approx(0.004)

    def test_render_names_the_failing_phase(self, dumped):
        _tmp, _machine, supervisor = dumped
        bundle = load_bundle(supervisor.postmortems[0])
        text = render_bundle(bundle)
        assert "RecoveryError" in text
        assert f"failing phase: {bundle['error']['phase']}" in text
        assert "critical path" in text

    def test_filename_is_deterministic(self, dumped, tmp_path):
        _tmp, _machine, supervisor = dumped
        first = os.path.basename(supervisor.postmortems[0])
        _machine2, supervisor2 = _doomed_run(tmp_path)
        assert os.path.basename(supervisor2.postmortems[0]) == first


class TestFlightRecorderBundle:
    def test_bundle_carries_ring_and_aggregates(self, tmp_path):
        _machine, supervisor = _doomed_run(tmp_path, flight_recorder=True)
        bundle = load_bundle(supervisor.postmortems[0])
        assert bundle["ring"]["enabled"]
        assert bundle["recent_events"]
        assert bundle["link_totals"]
        assert "metrics" in bundle
        text = render_bundle(bundle)
        assert "recent events" in text


class TestQuarantineBundle:
    def test_breaker_trip_dumps_a_quarantine_bundle(self, tmp_path):
        machine = Machine(ibm_ac922(), scale=1e5, fast_functional=True)
        machine.enable_observability()
        straggler = machine.spec.num_gpus - 1
        machine.install_faults(FaultPlan(events=(
            StragglerGpu(at=0.0, gpu=straggler, duration=1e9,
                         slowdown=2.0),)))
        jobs = [JobSpec(job_id=i, tenant="acme", arrival_s=0.0,
                        keys=4096, gpus=machine.spec.num_gpus,
                        algorithm="p2p", seed=i + 1)
                for i in range(2)]
        service = SortService(
            machine,
            config=ServiceConfig(breaker_threshold=1,
                                 postmortem_dir=str(tmp_path)))
        service.run(jobs)
        assert service.postmortems
        bundle = load_bundle(service.postmortems[0])
        assert bundle["kind"] == "quarantine"
        assert bundle["error"]["type"] == "ServiceError"
        assert str(straggler) in bundle["error"]["message"]
        assert "quarantine" in render_bundle(bundle)


class TestRobustness:
    def test_dump_failure_never_masks_the_sort_error(self, monkeypatch,
                                                     tmp_path):
        import repro.obs.postmortem as pm

        def boom(*args, **kwargs):
            raise RuntimeError("bundle writer exploded")

        monkeypatch.setattr(pm, "build_bundle", boom)
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        machine.enable_observability()
        machine.install_faults(
            FaultPlan(events=(GpuFail(at=0.004, gpu=3),)))
        supervisor = SortSupervisor(
            machine, SupervisorConfig(max_replans=0,
                                      postmortem_dir=str(tmp_path)))
        data = generate(65536, "uniform", seed=3)
        with pytest.raises(RecoveryError):
            supervisor.sort(data, algorithm="p2p")
        assert supervisor.postmortems == []

    def test_no_dir_means_no_dump(self, tmp_path):
        machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
        machine.enable_observability()
        machine.install_faults(
            FaultPlan(events=(GpuFail(at=0.004, gpu=3),)))
        supervisor = SortSupervisor(machine,
                                    SupervisorConfig(max_replans=0))
        with pytest.raises(RecoveryError):
            supervisor.sort(generate(65536, "uniform", seed=3),
                            algorithm="p2p")
        assert supervisor.postmortems == []
        assert supervisor.failed_phase is not None

    def test_load_bundle_rejects_garbage(self, tmp_path):
        path = tmp_path / "not-a-bundle.json"
        path.write_text("{]")
        with pytest.raises(ReproError):
            load_bundle(str(path))
        path.write_text(json.dumps({"no": "version"}))
        with pytest.raises(ReproError):
            load_bundle(str(path))
        with pytest.raises(ReproError):
            load_bundle(str(tmp_path / "missing.json"))

    def test_build_bundle_without_observability(self, tmp_path):
        machine = Machine(dgx_a100(), scale=1)
        bundle = build_bundle(machine, ValueError("plain"), phase="Sort")
        assert bundle["critical_path"] is not None
        assert bundle["recent_events"] == []
        assert not bundle["ring"]["enabled"]
        path = write_bundle(bundle, str(tmp_path))
        assert load_bundle(path)["error"]["message"] == "plain"
