"""Per-job trace extraction from service episodes."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.hw import ibm_ac922
from repro.obs.jobs import job_labels, job_trace
from repro.runtime import Machine
from repro.serve import JobSpec, ServiceConfig, SortService


def _episode():
    machine = Machine(ibm_ac922(), scale=1e5, fast_functional=True)
    machine.enable_observability()
    jobs = [JobSpec(job_id=i, tenant="acme", arrival_s=0.0,
                    keys=4096, gpus=2, algorithm="p2p", seed=i + 1)
            for i in range(4)]
    report = SortService(machine).run(jobs)
    return machine, report


@pytest.fixture(scope="module")
def episode():
    return _episode()


class TestJobTrace:
    def test_labels_list_every_job(self, episode):
        machine, report = episode
        assert sorted(job_labels(machine.trace)) \
            == [f"acme/{i}" for i in range(4)]

    def test_filter_keeps_only_the_jobs_spans(self, episode):
        machine, report = episode
        result = next(r for r in report.results
                      if r.spec.label == "acme/0")
        trace, root = job_trace(machine.trace, "acme/0", result.gpu_ids)
        assert root.phase == "SupervisedSort"
        assert root.actor == "job:acme/0"
        assert trace.spans
        allowed = {f"gpu{gpu}" for gpu in result.gpu_ids} | {"job:acme/0"}
        for span in trace.spans:
            assert span.actor in allowed or span.actor.startswith("cpu")
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9

    def test_jobs_partition_their_device_spans(self, episode):
        """Concurrent jobs on disjoint gangs never claim each other's
        device spans."""
        machine, report = episode
        seen = {}
        for result in report.results:
            label = result.spec.label
            trace, _ = job_trace(machine.trace, label, result.gpu_ids)
            for span in trace.spans:
                if span.actor.startswith("gpu"):
                    key = (span.actor, span.start, span.end, span.phase)
                    assert key not in seen, \
                        f"{key} claimed by {seen.get(key)} and {label}"
                    seen[key] = label
        assert seen

    def test_phase_rollup_of_one_job_is_self_consistent(self, episode):
        machine, report = episode
        result = next(r for r in report.results
                      if r.spec.label == "acme/1")
        trace, root = job_trace(machine.trace, "acme/1", result.gpu_ids)
        durations = trace.phase_durations()
        assert durations["SupervisedSort"] \
            == pytest.approx(root.duration)
        for phase, duration in durations.items():
            assert duration <= root.duration + 1e-9

    def test_unknown_label_raises_with_known_jobs(self, episode):
        machine, report = episode
        with pytest.raises(ServiceError, match="acme/0"):
            job_trace(machine.trace, "acme/99", (0, 1))


class TestReplanMidPhase:
    """A job that loses a GPU mid-phase still extracts cleanly."""

    def _run(self, fail_at=None):
        from repro.faults import FaultPlan
        from repro.faults.events import GpuFail

        machine = Machine(ibm_ac922(), scale=1e5, fast_functional=True)
        machine.enable_observability()
        if fail_at is not None:
            machine.install_faults(FaultPlan(events=(
                GpuFail(at=fail_at, gpu=0),)))
        jobs = [JobSpec(job_id=0, tenant="acme", arrival_s=0.0,
                        keys=16384, gpus=machine.spec.num_gpus,
                        algorithm="p2p", seed=5)]
        report = SortService(machine).run(jobs)
        return machine, report.results[0]

    @pytest.fixture(scope="class")
    def replanned(self):
        # Probe the clean run's window, then kill a gang GPU midway.
        _machine, clean = self._run()
        midpoint = (clean.started_s + clean.finished_s) / 2.0
        machine, result = self._run(fail_at=midpoint)
        assert result.status == "completed"
        assert result.sort.replans >= 1, "fault missed the job"
        return machine, result

    def test_replan_marker_is_attributed_to_the_job(self, replanned):
        machine, result = replanned
        trace, _root = job_trace(machine.trace, "acme/0",
                                 result.gpu_ids)
        replans = [s for s in trace.spans if s.phase == "Replan"]
        assert replans
        assert all(s.actor == "job:acme/0" for s in replans)

    def test_dead_gpus_pre_failure_spans_are_kept(self, replanned):
        machine, result = replanned
        trace, root = job_trace(machine.trace, "acme/0",
                                result.gpu_ids)
        dead = [s for s in trace.spans if s.actor == "gpu0"]
        assert dead, "spans from before the failure were dropped"
        assert all(s.end <= root.end + 1e-9 for s in dead)

    def test_extraction_still_brackets_every_span(self, replanned):
        machine, result = replanned
        trace, root = job_trace(machine.trace, "acme/0",
                                result.gpu_ids)
        phases = {s.phase for s in trace.spans}
        assert "SupervisedSort" in phases
        for span in trace.spans:
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9
