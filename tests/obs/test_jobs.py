"""Per-job trace extraction from service episodes."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.hw import ibm_ac922
from repro.obs.jobs import job_labels, job_trace
from repro.runtime import Machine
from repro.serve import JobSpec, ServiceConfig, SortService


def _episode():
    machine = Machine(ibm_ac922(), scale=1e5, fast_functional=True)
    machine.enable_observability()
    jobs = [JobSpec(job_id=i, tenant="acme", arrival_s=0.0,
                    keys=4096, gpus=2, algorithm="p2p", seed=i + 1)
            for i in range(4)]
    report = SortService(machine).run(jobs)
    return machine, report


@pytest.fixture(scope="module")
def episode():
    return _episode()


class TestJobTrace:
    def test_labels_list_every_job(self, episode):
        machine, report = episode
        assert sorted(job_labels(machine.trace)) \
            == [f"acme/{i}" for i in range(4)]

    def test_filter_keeps_only_the_jobs_spans(self, episode):
        machine, report = episode
        result = next(r for r in report.results
                      if r.spec.label == "acme/0")
        trace, root = job_trace(machine.trace, "acme/0", result.gpu_ids)
        assert root.phase == "SupervisedSort"
        assert root.actor == "job:acme/0"
        assert trace.spans
        allowed = {f"gpu{gpu}" for gpu in result.gpu_ids} | {"job:acme/0"}
        for span in trace.spans:
            assert span.actor in allowed or span.actor.startswith("cpu")
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9

    def test_jobs_partition_their_device_spans(self, episode):
        """Concurrent jobs on disjoint gangs never claim each other's
        device spans."""
        machine, report = episode
        seen = {}
        for result in report.results:
            label = result.spec.label
            trace, _ = job_trace(machine.trace, label, result.gpu_ids)
            for span in trace.spans:
                if span.actor.startswith("gpu"):
                    key = (span.actor, span.start, span.end, span.phase)
                    assert key not in seen, \
                        f"{key} claimed by {seen.get(key)} and {label}"
                    seen[key] = label
        assert seen

    def test_phase_rollup_of_one_job_is_self_consistent(self, episode):
        machine, report = episode
        result = next(r for r in report.results
                      if r.spec.label == "acme/1")
        trace, root = job_trace(machine.trace, "acme/1", result.gpu_ids)
        durations = trace.phase_durations()
        assert durations["SupervisedSort"] \
            == pytest.approx(root.duration)
        for phase, duration in durations.items():
            assert duration <= root.duration + 1e-9

    def test_unknown_label_raises_with_known_jobs(self, episode):
        machine, report = episode
        with pytest.raises(ServiceError, match="acme/0"):
            job_trace(machine.trace, "acme/99", (0, 1))
