"""Critical-path attribution: partition invariant and attributions.

The headline guarantee under test: the extracted segments *partition*
the wall-time window — they are contiguous, non-overlapping, and sum to
the wall time within float tolerance — so every rollup percentage is
exact, not impressionistic.  The dominant-phase assertions pin the
known answer for the reference platform (an 8-GPU DGX A100 P2P sort is
gated by the host-to-device staging copies).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.hw import dgx_a100, ibm_ac922
from repro.obs.critpath import (
    CriticalPath,
    InFlight,
    Segment,
    _blocking_chain,
    critical_path,
    fault_windows_of,
    job_critical_path,
    tenant_rollup,
)
from repro.runtime import Machine
from repro.serve import JobSpec, SortService
from repro.sort import p2p_sort


def _p2p_run():
    # Large enough that transfer/kernel time, not fixed latencies,
    # carries the wall time — the regime the paper measures.
    machine = Machine(dgx_a100(), scale=1000, fast_functional=True)
    recorder = machine.enable_observability()
    data = np.random.default_rng(7).integers(
        0, 1 << 24, size=65536).astype(np.int32)
    result = p2p_sort(machine, data)
    return machine, recorder, result


@pytest.fixture(scope="module")
def p2p_path():
    machine, recorder, result = _p2p_run()
    path = critical_path(machine.trace, recorder,
                         tier_of=machine.spec.topology.tier_of)
    return machine, result, path


class TestPartition:
    def test_segments_partition_wall_time(self, p2p_path):
        _machine, _result, path = p2p_path
        path.validate(rel_tol=1e-6)
        assert path.covered == pytest.approx(path.wall, rel=1e-6)

    def test_segments_are_contiguous_and_ascending(self, p2p_path):
        _machine, _result, path = p2p_path
        cursor = path.start
        for seg in path.segments:
            assert seg.start == pytest.approx(cursor, abs=1e-12)
            assert seg.end > seg.start
            cursor = seg.end
        assert cursor == pytest.approx(path.end, abs=1e-12)

    def test_window_matches_the_run(self, p2p_path):
        machine, result, path = p2p_path
        assert path.wall == pytest.approx(result.duration, rel=1e-6)


class TestAttribution:
    def test_dominant_phase_is_htod_on_dgx_p2p(self, p2p_path):
        """The known answer for the reference platform: staging over
        the PCIe host links gates the P2P sort, not the NVLink
        exchange or the kernels."""
        _machine, _result, path = p2p_path
        assert path.dominant_phase() == "HtoD"

    def test_link_time_dominates_kernel_time(self, p2p_path):
        _machine, _result, path = p2p_path
        by_cat = path.by_category()
        assert by_cat["link"] > by_cat["kernel"]

    def test_link_segments_carry_bottleneck_and_tier(self, p2p_path):
        _machine, _result, path = p2p_path
        links = [s for s in path.segments if s.category == "link"]
        assert links
        for seg in links:
            assert seg.detail, "link segment without a bottleneck link"
            assert seg.tier in ("intra", "inter")

    def test_rollups_each_sum_to_wall(self, p2p_path):
        _machine, _result, path = p2p_path
        for rollup in (path.by_category(), path.by_phase()):
            assert sum(rollup.values()) == pytest.approx(path.wall,
                                                         rel=1e-6)

    def test_to_dict_round_trips_the_rollups(self, p2p_path):
        _machine, _result, path = p2p_path
        blob = path.to_dict()
        assert blob["wall_s"] == pytest.approx(path.wall)
        assert blob["by_phase"] == path.by_phase()
        assert len(blob["segments"]) == len(path.segments)


class TestBlockingChain:
    """The backward walk on synthetic interval sets."""

    def test_empty_items_is_one_wait(self):
        assert _blocking_chain([], 0.0, 2.0) == [(0.0, 2.0, None)]

    def test_single_item_with_side_gaps(self):
        chain = _blocking_chain([(1.0, 2.0, "a")], 0.0, 3.0)
        assert chain == [(0.0, 1.0, None), (1.0, 2.0, "a"),
                         (2.0, 3.0, None)]

    def test_long_pole_wins_over_nested_item(self):
        # b nests inside a; the long pole a blocks the whole window.
        chain = _blocking_chain([(0.0, 4.0, "a"), (1.0, 2.0, "b")],
                                0.0, 4.0)
        assert chain == [(0.0, 4.0, "a")]

    def test_chained_items_hand_off_at_starts(self):
        chain = _blocking_chain([(0.0, 2.0, "a"), (1.0, 4.0, "b")],
                                0.0, 4.0)
        assert chain == [(0.0, 1.0, "a"), (1.0, 4.0, "b")]

    def test_partition_holds_on_random_intervals(self):
        rng = np.random.default_rng(13)
        starts = rng.uniform(0.0, 10.0, size=200)
        durations = rng.uniform(0.01, 3.0, size=200)
        items = [(float(s), float(s + d), i)
                 for i, (s, d) in enumerate(zip(starts, durations))]
        chain = _blocking_chain(items, 0.0, 12.0)
        cursor = 0.0
        for lo, hi, _payload in chain:
            assert lo == pytest.approx(cursor, abs=1e-9)
            assert hi > lo
            cursor = hi
        assert cursor == pytest.approx(12.0, abs=1e-9)


class TestWaitsAndFaults:
    def test_wait_overlapping_fault_window_is_classified(self):
        path = critical_path(
            _trace_with_gap(), None,
            fault_windows=[("gpu_fail", "gpu1", 1.2, 1.8)])
        faults = [s for s in path.segments if s.category == "fault"]
        assert faults and faults[0].detail == "gpu_fail@gpu1"
        assert faults[0].start == pytest.approx(1.2)
        assert faults[0].end == pytest.approx(1.8)
        path.validate(rel_tol=1e-9)

    def test_in_flight_marker_puts_dying_phase_on_the_chain(self):
        path = critical_path(
            _trace_with_gap(), None, end=5.0,
            in_flight=InFlight(phase="Exchange", start=3.0))
        assert path.end == 5.0
        tail = path.segments[-1]
        assert tail.phase == "Exchange"
        assert tail.category == "engine-wait"  # no recorder: no flows
        path.validate(rel_tol=1e-9)

    def test_fault_windows_of_clips_open_windows(self):
        machine, _recorder, _result = _p2p_run()
        assert fault_windows_of(machine) == []


def _trace_with_gap():
    """Two kernel spans with a [1.0, 2.0] gap between them."""
    from repro.sim.engine import Environment
    from repro.sim.trace import Trace

    trace = Trace(Environment())
    trace.record("Sort", "gpu0", 0.0, end=1.0)
    trace.record("Merge", "gpu0", 2.0, end=3.0)
    return trace


class TestJobPaths:
    @pytest.fixture(scope="class")
    def episode(self):
        machine = Machine(ibm_ac922(), scale=1e5, fast_functional=True)
        recorder = machine.enable_observability()
        jobs = [JobSpec(job_id=i, tenant=("acme", "umbrella")[i % 2],
                        arrival_s=0.0, keys=4096, gpus=2,
                        algorithm="p2p", seed=i + 1)
                for i in range(4)]
        report = SortService(machine).run(jobs)
        return machine, recorder, report

    def test_job_path_wall_is_the_jobs_latency(self, episode):
        machine, recorder, report = episode
        done = [r for r in report.results if r.status == "completed"]
        assert done
        for result in done:
            path = job_critical_path(machine.trace, recorder, result)
            assert path.label == result.spec.label
            assert path.wall == pytest.approx(result.latency_s, rel=1e-6)
            path.validate(rel_tol=1e-6)

    def test_queued_job_leads_with_queue_wait(self, episode):
        machine, recorder, report = episode
        queued = [r for r in report.results
                  if r.status == "completed" and r.queue_wait_s > 1e-9]
        assert queued, "episode produced no queued job"
        path = job_critical_path(machine.trace, recorder, queued[0])
        head = path.segments[0]
        assert head.category == "queue-wait"
        assert head.duration == pytest.approx(queued[0].queue_wait_s,
                                              rel=1e-6)

    def test_never_started_job_raises(self, episode):
        machine, recorder, report = episode
        result = report.results[0]
        fake = type(result)(spec=result.spec, status="rejected")
        with pytest.raises(ServiceError, match="never ran"):
            job_critical_path(machine.trace, recorder, fake)

    def test_tenant_rollup_sums_job_walls(self, episode):
        machine, recorder, report = episode
        paths = [job_critical_path(machine.trace, recorder, r)
                 for r in report.results if r.started_s is not None]
        rollup = tenant_rollup(paths)
        assert set(rollup) <= {"acme", "umbrella"}
        total = sum(entry["total"] for entry in rollup.values())
        assert total == pytest.approx(sum(p.wall for p in paths))
        for entry in rollup.values():
            categories = sum(v for k, v in entry.items() if k != "total")
            assert categories == pytest.approx(entry["total"], rel=1e-6)


class TestValidate:
    def test_validate_rejects_a_gap(self):
        path = CriticalPath(0.0, 2.0, [
            Segment(0.0, 0.5, "kernel", "Sort", "gpu0"),
            Segment(1.5, 2.0, "kernel", "Merge", "gpu0")])
        with pytest.raises(ValueError):
            path.validate()

    def test_validate_rejects_short_coverage(self):
        path = CriticalPath(0.0, 2.0,
                            [Segment(0.0, 1.0, "kernel", "Sort", "gpu0")])
        with pytest.raises(ValueError):
            path.validate()

    def test_empty_chain_over_empty_window_is_fine(self):
        CriticalPath(1.0, 1.0, []).validate()
