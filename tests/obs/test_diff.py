"""Benchmark diffing: directions, thresholds, comparability, exit path."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs.diff import (
    diff_files,
    diff_records,
    format_diff,
    load_bench,
    metric_direction,
)


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "wall_s", "churn_wall_s", "clean_s", "faulted_s",
        "fault_downtime_s", "overhead_pct", "ref_wall_s",
    ])
    def test_lower_is_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize("name", [
        "events_per_sec", "keys_per_sec", "speedup", "speedup_vs_seed",
    ])
    def test_higher_is_better(self, name):
        assert metric_direction(name) == +1

    @pytest.mark.parametrize("name", ["events", "keys", "gpus", "firewall_size"])
    def test_undirected(self, name):
        assert metric_direction(name) is None


def _record(**scenarios):
    return {"benchmark": "t", "scenarios": scenarios,
            "provenance": {"config_hash": "abc"}}


class TestDiffRecords:
    def test_regression_past_threshold(self):
        result = diff_records(_record(s={"wall_s": 1.0}),
                              _record(s={"wall_s": 1.3}))
        assert not result.ok
        [delta] = result.regressions
        assert delta.change == pytest.approx(0.3)
        assert "REGRESSED" in format_diff(result)
        assert "FAIL" in format_diff(result)

    def test_sub_threshold_movement_is_not_a_regression(self):
        result = diff_records(_record(s={"wall_s": 1.0}),
                              _record(s={"wall_s": 1.05}))
        assert result.ok
        assert result.deltas and not result.regressions

    def test_improvement_direction_aware(self):
        result = diff_records(
            _record(s={"wall_s": 1.0, "events_per_sec": 100.0}),
            _record(s={"wall_s": 0.5, "events_per_sec": 200.0}))
        assert result.ok
        assert len(result.improvements) == 2

    def test_throughput_drop_is_a_regression(self):
        result = diff_records(_record(s={"events_per_sec": 100.0}),
                              _record(s={"events_per_sec": 50.0}))
        assert not result.ok

    def test_undirected_drift_never_fails(self):
        result = diff_records(_record(s={"events": 100.0}),
                              _record(s={"events": 900.0}))
        assert result.ok
        assert result.deltas[0].direction is None

    def test_unchanged_metrics_are_skipped(self):
        result = diff_records(_record(s={"wall_s": 1.0}),
                              _record(s={"wall_s": 1.0}))
        assert result.deltas == []

    def test_scenario_set_changes_reported(self):
        result = diff_records(_record(gone={"wall_s": 1.0}),
                              _record(added={"wall_s": 1.0}))
        assert result.only_old == ["gone"]
        assert result.only_new == ["added"]

    def test_config_hash_mismatch_flags_incomparable(self):
        old = _record(s={"wall_s": 1.0})
        new = _record(s={"wall_s": 1.0})
        new["provenance"] = {"config_hash": "different"}
        result = diff_records(old, new)
        assert not result.comparable
        assert "config hashes differ" in format_diff(result)

    def test_missing_provenance_stays_comparable(self):
        result = diff_records({"scenarios": {}}, {"scenarios": {}})
        assert result.comparable

    def test_booleans_and_non_numeric_are_ignored(self):
        result = diff_records(_record(s={"ok": True, "name": "a"}),
                              _record(s={"ok": False, "name": "b"}))
        assert result.deltas == []

    def test_custom_threshold(self):
        old, new = _record(s={"wall_s": 1.0}), _record(s={"wall_s": 1.05})
        assert diff_records(old, new, threshold=0.01).regressions
        assert not diff_records(old, new, threshold=0.10).regressions
        with pytest.raises(ReproError):
            diff_records(old, new, threshold=-0.1)


class TestDiffFiles:
    def _write(self, path, record):
        path.write_text(json.dumps(record))
        return str(path)

    def test_round_trip(self, tmp_path):
        old = self._write(tmp_path / "old.json", _record(s={"wall_s": 1.0}))
        new = self._write(tmp_path / "new.json", _record(s={"wall_s": 2.0}))
        assert not diff_files(old, new).ok
        assert diff_files(old, old).ok

    def test_load_bench_rejects_non_records(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a bench"}))
        with pytest.raises(ReproError):
            load_bench(str(path))

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import main

        old = self._write(tmp_path / "old.json", _record(s={"wall_s": 1.0}))
        new = self._write(tmp_path / "new.json", _record(s={"wall_s": 1.3}))
        assert main(["diff", old, old]) == 0
        assert main(["diff", old, new]) == 1
        assert main(["diff", old, new, "--threshold", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out


class TestMalformedInputs:
    """Hardening: missing / legacy / corrupt BENCH files exit 2 with a
    per-file diagnostic instead of a raw traceback."""

    def _write(self, path, text):
        path.write_text(text)
        return str(path)

    def test_missing_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_bench(str(tmp_path / "nope.json"))

    def test_invalid_json_is_a_typed_error(self, tmp_path):
        path = self._write(tmp_path / "bad.json", "{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_bench(path)

    def test_non_object_record_is_a_typed_error(self, tmp_path):
        path = self._write(tmp_path / "list.json", "[1, 2, 3]")
        with pytest.raises(ReproError, match="expected a JSON object"):
            load_bench(path)

    def test_legacy_record_diagnostic_names_the_keys(self, tmp_path):
        path = self._write(tmp_path / "legacy.json",
                           json.dumps({"results": [], "meta": {}}))
        with pytest.raises(ReproError,
                           match="top-level keys: meta, results"):
            load_bench(path)

    def test_non_mapping_scenarios_is_a_typed_error(self, tmp_path):
        path = self._write(tmp_path / "odd.json",
                           json.dumps({"scenarios": [1, 2]}))
        with pytest.raises(ReproError, match="must be an object"):
            load_bench(path)

    def test_non_dict_scenario_entry_is_skipped_with_diagnostic(self):
        old = _record(s={"wall_s": 1.0})
        new = _record(s={"wall_s": 1.0})
        old["scenarios"]["weird"] = [1, 2]
        new["scenarios"]["weird"] = {"wall_s": 2.0}
        result = diff_records(old, new)
        assert result.ok
        assert any("weird" in problem for problem in result.problems)
        assert any("weird" in line
                   for line in format_diff(result).splitlines()
                   if line.startswith("WARNING"))

    def test_cli_exits_2_on_malformed_input(self, tmp_path, capsys):
        from repro.obs.cli import main

        good = self._write(tmp_path / "good.json",
                           json.dumps(_record(s={"wall_s": 1.0})))
        legacy = self._write(tmp_path / "legacy.json",
                             json.dumps({"results": []}))
        assert main(["diff", str(tmp_path / "nope.json"), good]) == 2
        assert main(["diff", legacy, good]) == 2
        assert main(["diff", good, legacy]) == 2
        err = capsys.readouterr().err
        assert "diff error" in err
