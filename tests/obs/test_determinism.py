"""Observability must not perturb the simulation.

The recorder is read-only and every emit site is gated on ``obs is not
None``, so a run with observability enabled must be *bit-identical* in
simulated time to the same run without it.  These tests run the same
sort twice — instrumented and not — and require identical span
tuples, durations, and final clocks.  (The committed goldens in
``tests/sim`` separately pin the uninstrumented behaviour across
commits.)
"""

from __future__ import annotations

import numpy as np

from repro.hw import dgx_a100, ibm_ac922
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort

#: Root spans ("P2PSort"/"HetSort") are only recorded when observability
#: is on — they exist *for* the timeline — so the equivalence check
#: compares the simulation-driven spans.
_ROOT_PHASES = ("P2PSort", "HetSort")


def _run(spec_factory, algorithm, observed: bool):
    machine = Machine(spec_factory(), scale=1)
    if observed:
        machine.enable_observability()
    data = np.random.default_rng(31).integers(
        0, 1 << 24, size=8192).astype(np.int32)
    result = algorithm(machine, data)
    spans = [(s.phase, s.actor, s.start, s.end, s.bytes)
             for s in machine.trace.spans if s.phase not in _ROOT_PHASES]
    return spans, result.duration, machine.env.now, result.output


def _assert_equivalent(spec_factory, algorithm):
    base_spans, base_duration, base_now, base_out = _run(
        spec_factory, algorithm, observed=False)
    obs_spans, obs_duration, obs_now, obs_out = _run(
        spec_factory, algorithm, observed=True)
    assert obs_spans == base_spans
    assert obs_duration == base_duration
    assert obs_now == base_now
    assert np.array_equal(obs_out, base_out)


def test_p2p_on_dgx_is_bit_identical():
    _assert_equivalent(dgx_a100, p2p_sort)


def test_het_on_ac922_is_bit_identical():
    _assert_equivalent(ibm_ac922, het_sort)


def test_only_root_spans_are_added():
    base_spans, *_ = _run(dgx_a100, p2p_sort, observed=False)
    machine = Machine(dgx_a100(), scale=1)
    machine.enable_observability()
    data = np.random.default_rng(31).integers(
        0, 1 << 24, size=8192).astype(np.int32)
    p2p_sort(machine, data)
    extra = [s for s in machine.trace.spans if s.phase in _ROOT_PHASES]
    assert len(machine.trace.spans) == len(base_spans) + len(extra)
    assert len(extra) == 1
