"""Provenance: config hashing, git facts, the stamped block."""

from __future__ import annotations

import json

from repro.bench.report import write_bench_record
from repro.obs.provenance import (
    config_hash,
    git_revision,
    host_info,
    provenance,
)


class TestConfigHash:
    def test_stable_for_equal_values(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == \
            config_hash({"a": 1, "b": [2, 3]})

    def test_key_order_does_not_matter(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_changes_do(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_non_json_values_degrade_via_str(self):
        assert config_hash({"dtype": object}) == config_hash({"dtype": object})


class TestGitRevision:
    def test_inside_this_repo(self):
        revision = git_revision()
        assert isinstance(revision["commit"], str)
        assert len(revision["commit"]) == 40
        assert isinstance(revision["dirty"], bool)

    def test_outside_a_repo_returns_nones(self, tmp_path):
        revision = git_revision(cwd=str(tmp_path))
        assert revision == {"commit": None, "dirty": None}


class TestProvenanceBlock:
    def test_block_shape(self):
        block = provenance({"keys": 100}, seed=7)
        assert block["seed"] == 7
        assert block["config_hash"] == config_hash({"keys": 100})
        assert block["timestamp"].endswith("+00:00")
        assert set(host_info()) <= set(block["host"])

    def test_write_bench_record_stamps_and_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        record = {"benchmark": "t", "keys": 10,
                  "scenarios": {"s": {"wall_s": 1.0}}}
        write_bench_record(str(path), record, seed=11)
        loaded = json.loads(path.read_text())
        block = loaded["provenance"]
        assert block["seed"] == 11
        # The hash covers the config only — not the measurements.
        assert block["config_hash"] == \
            config_hash({"benchmark": "t", "keys": 10})
        assert loaded["scenarios"] == record["scenarios"]

    def test_original_record_is_not_mutated(self, tmp_path):
        record = {"benchmark": "t", "scenarios": {}}
        write_bench_record(str(tmp_path / "b.json"), record)
        assert "provenance" not in record

    def test_restamp_keeps_config_hash(self, tmp_path):
        # Re-running a bench must not fold the previous provenance into
        # the new config hash, or hashes would drift run over run.
        record = {"benchmark": "t", "keys": 10,
                  "scenarios": {"s": {"wall_s": 1.0}}}
        path = tmp_path / "b.json"
        write_bench_record(str(path), record)
        first = json.loads(path.read_text())
        write_bench_record(str(path), first)
        second = json.loads(path.read_text())
        assert second["provenance"]["config_hash"] == \
            first["provenance"]["config_hash"]
