"""Flight-recorder mode: bounded ring buffers with exact aggregates.

Always-on observability must hold two properties at once: the raw
event stream stays *bounded* (per-kind caps, tail eviction) while the
derived aggregates — per-link bytes/peak/saturation, per-engine busy
time — stay *exact*, because they are folded in at emit time and so
survive the eviction of the events they summarize.  Eviction must also
never orphan state the live run still needs: FlowStart events of
in-flight flows and FaultOpen events of still-open windows are pinned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import dgx_a100
from repro.obs.recorder import Recorder, RingConfig
from repro.runtime import Machine
from repro.sort import p2p_sort

#: A deliberately tiny ring so a single sort overflows every kind.
TINY = RingConfig(default_cap=64, completed_flows=16, compact_batch=8)


def _sorted_run(ring):
    machine = Machine(dgx_a100(), scale=1)
    recorder = machine.enable_observability(
        Recorder(ring=ring) if ring is not None else None)
    data = np.random.default_rng(11).integers(
        0, 1 << 24, size=65536).astype(np.int32)
    result = p2p_sort(machine, data)
    return machine, recorder, result


@pytest.fixture(scope="module")
def bounded_and_not():
    machine_r, ring_rec, result_r = _sorted_run(TINY)
    machine_u, flat_rec, result_u = _sorted_run(None)
    return (machine_r, ring_rec, result_r), (machine_u, flat_rec, result_u)


class TestBounded:
    def test_event_counts_respect_caps(self, bounded_and_not):
        (_m, recorder, _r), _ = bounded_and_not
        counts: dict = {}
        for event in recorder.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        for kind, count in counts.items():
            assert count <= TINY.cap_for(kind) + TINY.compact_batch, (
                f"{kind} retained {count} events past its cap")

    def test_completed_flow_records_are_trimmed(self, bounded_and_not):
        (_m, recorder, _r), _ = bounded_and_not
        done = [f for f in recorder.flows if f.end is not None]
        assert len(done) <= TINY.completed_flows + TINY.compact_batch
        assert recorder.evicted_flows > 0

    def test_ring_stats_account_for_evictions(self, bounded_and_not):
        (_m, recorder, _r), (_mu, flat, _ru) = bounded_and_not
        stats = recorder.ring_stats()
        assert stats["enabled"]
        assert stats["evicted_total"] > 0
        assert (stats["events_retained"] + stats["evicted_total"]
                == len(flat.events))
        assert not flat.ring_stats()["enabled"]


class TestAggregatesSurviveEviction:
    def test_link_totals_match_unbounded_recorder(self, bounded_and_not):
        (_m, recorder, _r), (_mu, flat, _ru) = bounded_and_not
        ringed, full = recorder.link_totals(), flat.link_totals()
        assert set(ringed) == set(full)
        for key in full:
            for field in ("bytes", "peak", "capacity", "saturated_s"):
                assert ringed[key][field] == pytest.approx(
                    full[key][field]), f"{key}.{field} diverged"

    def test_engine_busy_matches_unbounded_recorder(self, bounded_and_not):
        (_m, recorder, _r), (_mu, flat, _ru) = bounded_and_not
        assert recorder.engine_busy() == pytest.approx(flat.engine_busy())

    def test_metrics_match_unbounded_recorder(self, bounded_and_not):
        (_m, recorder, _r), (_mu, flat, _ru) = bounded_and_not
        assert recorder.metrics.snapshot() == flat.metrics.snapshot()


class TestDeterminism:
    def test_ring_mode_is_bit_identical_in_simulated_time(
            self, bounded_and_not):
        (machine_r, _rec, result_r), (machine_u, _flat, result_u) = \
            bounded_and_not
        assert result_r.duration == result_u.duration
        assert machine_r.env.now == machine_u.env.now
        assert np.array_equal(result_r.output, result_u.output)
        spans_r = [(s.phase, s.actor, s.start, s.end)
                   for s in machine_r.trace.spans]
        spans_u = [(s.phase, s.actor, s.start, s.end)
                   for s in machine_u.trace.spans]
        assert spans_r == spans_u


class TestPinning:
    def test_live_flow_starts_survive_compaction(self, env, net):
        from repro.sim.resources import Direction, Resource

        recorder = Recorder(ring=RingConfig(default_cap=4,
                                            compact_batch=2))
        net.obs = recorder
        shared = Resource("shared", 100.0)
        # One huge flow stays live while many short ones churn the ring.
        net.start_flow([(shared, Direction.FWD)], 1e6, label="whale")

        def churn():
            for i in range(40):
                net.start_flow([(shared, Direction.FWD)], 1.0,
                               label=f"minnow{i}")
                yield env.timeout(0.01)

        env.process(churn())
        env.run(until=0.5)
        starts = [e for e in recorder.events if e.kind == "flow_start"]
        assert any(e.label == "whale" for e in starts), (
            "compaction evicted the FlowStart of a live flow")
        assert recorder.ring_stats()["evicted_total"] > 0
