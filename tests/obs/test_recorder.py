"""Recorder behaviour, from bare flow-network hooks to full sort runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeApiError
from repro.hw import dgx_a100, ibm_ac922
from repro.obs.recorder import Recorder
from repro.obs.telemetry import link_series
from repro.runtime import Machine
from repro.sim.resources import Direction, Resource
from repro.sort import het_sort, p2p_sort


class TestFlowHooks:
    def _storm(self, env, net, recorder, n=8):
        net.obs = recorder
        shared = Resource("shared", 100.0)
        private = [Resource(f"p{i}", 5.0 + i) for i in range(n)]

        def arrivals():
            for i in range(n):
                net.start_flow(
                    [(shared, Direction.FWD), (private[i], Direction.FWD)],
                    10.0 * (i + 1), label=f"f{i}")
                yield env.timeout(0.05)

        env.process(arrivals())
        env.run()

    def test_flow_lifecycles_compile(self, env, net):
        recorder = Recorder()
        self._storm(env, net, recorder)
        assert len(recorder.flows) == 8
        assert all(record.end is not None for record in recorder.flows)
        assert all(not record.aborted for record in recorder.flows)
        assert all(record.duration > 0 for record in recorder.flows)
        assert recorder.metrics.counter("flows.started").value == 8
        assert recorder.metrics.counter("flows.retired").value == 8
        assert recorder.metrics.gauge("flows.active").value == 0

    def test_events_arrive_in_time_order(self, env, net):
        recorder = Recorder()
        self._storm(env, net, recorder)
        times = [event.t for event in recorder.events]
        assert times == sorted(times)
        assert recorder.last_time == pytest.approx(env.now)

    def test_link_rate_integrates_to_bytes_carried(self, env, net):
        # The fluid model is piecewise constant, so integrating the
        # change-driven LinkRate series over the run must reproduce the
        # bytes each link carried exactly: every flow crosses the shared
        # link plus one private link, contributing its size to both.
        recorder = Recorder()
        self._storm(env, net, recorder)
        series = link_series(recorder)
        flow_bytes = sum(record.size for record in recorder.flows)
        shared = series[("shared", "fwd")]
        assert shared.integrate(0.0, env.now) == pytest.approx(flow_bytes)
        total = sum(entry.integrate(0.0, env.now)
                    for entry in series.values())
        assert total == pytest.approx(2 * flow_bytes)

    def test_final_link_rates_return_to_zero(self, env, net):
        recorder = Recorder()
        self._storm(env, net, recorder)
        for entry in link_series(recorder).values():
            assert entry.points[-1][1] == 0.0


class TestMachineIntegration:
    def _sorted_run(self, machine, algorithm=p2p_sort, n=4096):
        recorder = machine.enable_observability()
        rng = np.random.default_rng(7)
        data = rng.integers(0, 1 << 20, size=n).astype(np.int32)
        result = algorithm(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        return recorder, result

    def test_enable_twice_raises(self, dgx):
        dgx.enable_observability()
        with pytest.raises(RuntimeApiError):
            dgx.enable_observability()

    def test_supplied_recorder_is_used(self):
        machine = Machine(dgx_a100(), scale=1)
        mine = Recorder(engine_sample_every=64)
        assert machine.enable_observability(mine) is mine

    def test_p2p_sort_emits_full_stream(self, dgx):
        recorder, _ = self._sorted_run(dgx)
        kinds = {event.kind for event in recorder.events}
        assert {"flow_start", "flow_retire", "link_rate",
                "engine_acquire", "engine_release", "kernel_launch",
                "engine_sample"} <= kinds
        assert recorder.metrics.counter("kernels.launched").value > 0
        assert recorder.metrics.counter("flows.aborted").value == 0

    def test_flows_are_parented_under_trace_spans(self, dgx):
        recorder, _ = self._sorted_run(dgx)
        assert recorder.flows
        span_ids = {span.id for span in dgx.trace.spans}
        for record in recorder.flows:
            assert record.parent_span is not None
            assert record.parent_span in span_ids

    def test_engine_slots_balance(self, dgx):
        recorder, _ = self._sorted_run(dgx)
        acquires = recorder.events_of("engine_acquire")
        releases = recorder.events_of("engine_release")
        assert acquires and len(acquires) == len(releases)
        # Every device DMA engine has a stable, addressable label.
        labels = {event.engine for event in acquires}
        assert "gpu0.dma_in" in labels

    def test_root_span_encloses_the_run(self, dgx):
        recorder, result = self._sorted_run(dgx)
        roots = [s for s in dgx.trace.spans if s.phase == "P2PSort"]
        assert len(roots) == 1
        root = roots[0]
        assert root.parent is None
        assert root.duration == pytest.approx(result.duration)
        children = dgx.trace.children_of(root.id)
        assert {span.phase for span in children} >= {"HtoD", "Sort", "DtoH"}

    def test_het_sort_on_ac922_instruments_too(self):
        machine = Machine(ibm_ac922(), scale=1)
        recorder, _ = self._sorted_run(machine, algorithm=het_sort, n=2048)
        assert [s.phase for s in machine.trace.spans].count("HetSort") == 1
        assert any(event.kind == "link_rate" and "xbus" in event.link
                   for event in recorder.events)

    def test_stream_submissions_are_recorded(self, dgx):
        from repro.runtime.stream import Stream

        recorder = dgx.enable_observability()
        stream = Stream(dgx, name="probe")

        def op():
            yield dgx.env.timeout(0.1)

        stream.submit(op())
        stream.submit(op())
        dgx.env.run()
        ops = recorder.events_of("stream_op")
        assert [(e.stream, e.depth) for e in ops] == [
            ("probe", 1), ("probe", 2)]
        assert recorder.metrics.gauge("stream.probe.depth").value == 0
        assert recorder.metrics.counter("stream.probe.ops").value == 2

    def test_faults_reach_the_stream(self):
        from repro.faults.plan import FaultPlan

        spec = ibm_ac922()
        # The scale stretches simulated time so the plan's fault windows
        # land inside the run.
        machine = Machine(spec, scale=100_000)
        recorder = machine.enable_observability()
        machine.install_faults(FaultPlan.generate(
            spec, seed=3, intensity=1.0, horizon=0.2))
        rng = np.random.default_rng(7)
        data = rng.integers(0, 1 << 20, size=4096).astype(np.int32)
        result = het_sort(machine, data)
        assert np.array_equal(result.output, np.sort(data))
        opens = recorder.events_of("fault_open")
        closes = recorder.events_of("fault_close")
        assert opens
        # Windows still open when the sim ends never close.
        windows = [e for e in opens if not e.instant]
        assert len(closes) <= len(windows)
        for close in closes:
            assert close.opened <= close.t
        assert recorder.metrics.counter("faults.window_seconds").value > 0

    def test_to_dicts_is_json_ready(self, dgx):
        import json

        recorder, _ = self._sorted_run(dgx)
        payload = json.dumps(recorder.to_dicts())
        assert '"kind": "flow_start"' in payload


class TestRecorderGuards:
    def test_sample_decimation_validated(self):
        with pytest.raises(ValueError):
            Recorder(engine_sample_every=0)

    def test_engine_sampling_decimates(self, env, net):
        recorder = Recorder(engine_sample_every=4)
        env.obs = recorder

        def ticks():
            for _ in range(20):
                yield env.timeout(0.1)

        env.process(ticks())
        env.run()
        samples = recorder.events_of("engine_sample")
        assert samples
        assert len(samples) <= env.events_processed // 4 + 1
