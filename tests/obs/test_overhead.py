"""Observability cost: disabled must be free, enabled must stay cheap.

The ``perf``-marked tests use *generous* ceilings so they only trip on
gross regressions, never on machine noise — same policy as the simcore
bench smoke.  Deselect with ``-m 'not perf'``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.experiments.simcore import SEED_BASELINE_WALL_S, run_churn
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sort import p2p_sort

#: The events-off hot path must not give back the simcore optimization:
#: the churn-400 storm ran at ~4.2 s on the seed tree and ~3x faster
#: after the incremental-reallocation work, so even matching the *seed*
#: wall would mean instrumentation ate the whole optimization — far
#: beyond its <2% budget.  The ceiling only trips on that gross case,
#: never on machine noise.
CHURN_OFF_CEILING_S = SEED_BASELINE_WALL_S["churn-400"]
#: Enabled-to-disabled wall ratio ceiling for an instrumented sort.
ENABLED_RATIO_CEILING = 3.0


@pytest.mark.perf
def test_events_off_churn_keeps_optimized_wall():
    wall = min(run_churn(400).wall_s for _ in range(3))
    assert wall < CHURN_OFF_CEILING_S, (
        f"churn-400 with observability off took {wall:.2f}s "
        f"(ceiling {CHURN_OFF_CEILING_S:.2f}s): the disabled-path "
        "instrumentation is no longer free")


@pytest.mark.perf
def test_enabled_overhead_is_bounded():
    def sort_wall(observed: bool) -> float:
        machine = Machine(dgx_a100(), scale=1)
        if observed:
            machine.enable_observability()
        data = np.random.default_rng(5).integers(
            0, 1 << 24, size=65536).astype(np.int32)
        start = time.perf_counter()
        p2p_sort(machine, data)
        return time.perf_counter() - start

    baseline = min(sort_wall(False) for _ in range(3))
    observed = min(sort_wall(True) for _ in range(3))
    assert observed < baseline * ENABLED_RATIO_CEILING + 0.05, (
        f"instrumented sort took {observed:.3f}s vs {baseline:.3f}s "
        f"uninstrumented (ceiling {ENABLED_RATIO_CEILING}x): recording "
        "has become too expensive to leave on")
