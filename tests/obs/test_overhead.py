"""Observability cost: disabled must be free, enabled must stay cheap.

The ``perf``-marked tests use *generous* ceilings so they only trip on
gross regressions, never on machine noise — same policy as the simcore
bench smoke.  Deselect with ``-m 'not perf'``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.experiments.simcore import SEED_BASELINE_WALL_S, run_churn
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sort import p2p_sort

#: The events-off hot path must not give back the simcore optimization:
#: the churn-400 storm ran at ~4.2 s on the seed tree and ~3x faster
#: after the incremental-reallocation work, so even matching the *seed*
#: wall would mean instrumentation ate the whole optimization — far
#: beyond its <2% budget.  The ceiling only trips on that gross case,
#: never on machine noise.
CHURN_OFF_CEILING_S = SEED_BASELINE_WALL_S["churn-400"]
#: Enabled-to-disabled wall ratio ceiling for an instrumented sort.
ENABLED_RATIO_CEILING = 3.0


@pytest.mark.perf
def test_events_off_churn_keeps_optimized_wall():
    wall = min(run_churn(400).wall_s for _ in range(3))
    assert wall < CHURN_OFF_CEILING_S, (
        f"churn-400 with observability off took {wall:.2f}s "
        f"(ceiling {CHURN_OFF_CEILING_S:.2f}s): the disabled-path "
        "instrumentation is no longer free")


#: Flight-recorder (ring) mode vs plain recorder wall ratio ceiling.
#: The ISSUE pins <=10% overhead; the additive slack absorbs timer
#: noise on sub-second runs.
RING_RATIO_CEILING = 1.10


@pytest.mark.perf
def test_flight_recorder_overhead_and_memory_on_cluster():
    """Ring mode on a 16-node cluster: <=10% wall overhead over the
    plain recorder, with the retained event stream bounded by the
    per-kind caps instead of growing with the run."""
    from repro.hw import make_cluster
    from repro.obs.recorder import Recorder, RingConfig
    from repro.sort import hier_sort

    # cap well below the ~23k events the run emits (so eviction is
    # exercised), batch large enough that compaction stays amortized.
    ring_config = RingConfig(default_cap=512, completed_flows=256,
                             compact_batch=512)

    def cluster_run(ring):
        machine = Machine(make_cluster("dgx-a100", 16), scale=100,
                          fast_functional=True)
        recorder = machine.enable_observability(
            Recorder(ring=ring_config) if ring else None)
        data = np.random.default_rng(9).integers(
            0, 1 << 24, size=32768).astype(np.int32)
        start = time.perf_counter()
        hier_sort(machine, data)
        return time.perf_counter() - start, recorder

    flat_walls, ring_walls = [], []
    for _ in range(3):
        wall, flat = cluster_run(ring=False)
        flat_walls.append(wall)
        wall, ringed = cluster_run(ring=True)
        ring_walls.append(wall)

    # Bounded memory: every kind respects its cap (+ compaction slack),
    # and the ring genuinely dropped events the flat recorder kept.
    counts: dict = {}
    for event in ringed.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    for kind, count in counts.items():
        cap = ring_config.cap_for(kind) + ring_config.compact_batch
        assert count <= cap, f"{kind}: {count} events retained > {cap}"
    assert len(ringed.events) < len(flat.events)
    assert ringed.ring_stats()["evicted_total"] > 0

    baseline, bounded = min(flat_walls), min(ring_walls)
    assert bounded < baseline * RING_RATIO_CEILING + 0.05, (
        f"flight-recorder cluster run took {bounded:.3f}s vs "
        f"{baseline:.3f}s plain (ceiling {RING_RATIO_CEILING}x): ring "
        "compaction has become too expensive for always-on use")


@pytest.mark.perf
def test_enabled_overhead_is_bounded():
    def sort_wall(observed: bool) -> float:
        machine = Machine(dgx_a100(), scale=1)
        if observed:
            machine.enable_observability()
        data = np.random.default_rng(5).integers(
            0, 1 << 24, size=65536).astype(np.int32)
        start = time.perf_counter()
        p2p_sort(machine, data)
        return time.perf_counter() - start

    baseline = min(sort_wall(False) for _ in range(3))
    observed = min(sort_wall(True) for _ in range(3))
    assert observed < baseline * ENABLED_RATIO_CEILING + 0.05, (
        f"instrumented sort took {observed:.3f}s vs {baseline:.3f}s "
        f"uninstrumented (ceiling {ENABLED_RATIO_CEILING}x): recording "
        "has become too expensive to leave on")
