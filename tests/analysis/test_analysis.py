"""Unit tests of breakdowns and derived metrics."""

import pytest

from repro.analysis import (
    PhaseBreakdown,
    breakdown_of,
    crossover_point,
    shape_error,
    speedup,
)
from repro.errors import ReproError
from repro.sort.result import SortResult


def make_result(**overrides):
    defaults = dict(
        algorithm="p2p", system="ibm-ac922", gpu_ids=(0, 1),
        physical_keys=1000, logical_keys=2e9, dtype="int32",
        duration=0.25,
        phase_durations={"HtoD": 0.05, "Sort": 0.07, "Merge": 0.05,
                         "DtoH": 0.07})
    defaults.update(overrides)
    return SortResult(**defaults)


class TestBreakdown:
    def test_fractions(self):
        breakdown = breakdown_of(make_result())
        assert breakdown.fraction("Sort") == pytest.approx(0.28)
        assert breakdown.fraction("Missing") == 0.0

    def test_dominant_phase(self):
        breakdown = PhaseBreakdown(total=1.0,
                                   phases={"HtoD": 0.2, "Merge": 0.7})
        assert breakdown.dominant_phase() == "Merge"

    def test_rows_in_display_order(self):
        rows = breakdown_of(make_result()).rows()
        assert [name for name, _, _ in rows] == \
            ["HtoD", "Sort", "Merge", "DtoH"]

    def test_zero_total(self):
        breakdown = PhaseBreakdown(total=0.0, phases={"Sort": 0.0})
        assert breakdown.fraction("Sort") == 0.0


class TestSpeedup:
    def test_speedup(self):
        assert speedup(2.0, 0.5) == 4.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            speedup(1.0, 0.0)


class TestShapeError:
    def test_perfect_match(self):
        assert shape_error([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_symmetric_in_direction(self):
        assert shape_error([2.0], [1.0]) == pytest.approx(
            shape_error([1.0], [2.0]))

    def test_worst_point_dominates(self):
        assert shape_error([1.0, 3.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            shape_error([1.0], [1.0, 2.0])
        with pytest.raises(ReproError):
            shape_error([], [])
        with pytest.raises(ReproError):
            shape_error([0.0], [1.0])


class TestCrossover:
    def test_finds_crossing(self):
        xs = [1, 2, 3, 4]
        a = [4.0, 3.0, 2.0, 1.0]
        b = [2.5, 2.5, 2.5, 2.5]
        x, value = crossover_point(xs, a, b)
        assert 2 < x < 3
        assert value == pytest.approx(2.5)

    def test_a_already_below(self):
        assert crossover_point([1, 2], [1.0, 1.0], [2.0, 2.0]) == (1, 1.0)

    def test_no_crossing(self):
        assert crossover_point([1, 2], [3.0, 3.0], [2.0, 2.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            crossover_point([1], [1.0, 2.0], [1.0])


class TestSortResultHelpers:
    def test_keys_per_second(self):
        assert make_result().keys_per_second == pytest.approx(8e9)

    def test_zero_duration(self):
        assert make_result(duration=0.0).keys_per_second == 0.0

    def test_phase_fraction(self):
        assert make_result().phase_fraction("HtoD") == pytest.approx(0.2)

    def test_summary_format(self):
        text = make_result().summary()
        assert "p2p" in text and "ibm-ac922" in text and "2.00B" in text
