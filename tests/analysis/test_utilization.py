"""Tests of the per-actor utilization analysis."""

import numpy as np
import pytest

from repro.analysis import load_imbalance, utilization_report
from repro.sim.trace import Trace


class TestUtilizationReport:
    @pytest.fixture
    def trace(self, env):
        trace = Trace(env)
        trace.record("HtoD", "gpu0", 0.0, end=1.0)
        trace.record("Sort", "gpu0", 1.0, end=2.0)
        trace.record("HtoD", "gpu1", 0.0, end=4.0)
        return trace

    def test_busy_time_and_fraction(self, trace):
        report = {u.actor: u for u in utilization_report(trace)}
        assert report["gpu0"].busy == pytest.approx(2.0)
        assert report["gpu0"].window == pytest.approx(4.0)
        assert report["gpu0"].fraction == pytest.approx(0.5)
        assert report["gpu1"].fraction == pytest.approx(1.0)

    def test_by_phase_split(self, trace):
        report = {u.actor: u for u in utilization_report(trace)}
        assert report["gpu0"].by_phase == {"HtoD": 1.0, "Sort": 1.0}

    def test_explicit_window(self, trace):
        report = utilization_report(trace, window=8.0)
        assert all(u.window == 8.0 for u in report)

    def test_window_is_optional(self, trace):
        # None means "use the trace extent" — same as omitting it.
        implicit = utilization_report(trace)
        explicit = utilization_report(trace, window=None)
        assert [u.window for u in explicit] == [u.window for u in implicit]

    @pytest.mark.parametrize("window", [0.0, -1.0])
    def test_non_positive_window_rejected(self, trace, window):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="window must be positive"):
            utilization_report(trace, window=window)

    def test_empty_trace(self, env):
        assert utilization_report(Trace(env)) == []

    def test_sort_run_utilization(self, rng, dgx):
        from repro.sort import p2p_sort

        data = rng.integers(0, 1000, size=2048).astype(np.int32)
        p2p_sort(dgx, data, gpu_ids=(0, 2))
        report = {u.actor: u for u in utilization_report(dgx.trace)}
        assert "gpu0" in report and "gpu2" in report
        assert report["gpu0"].busy > 0


class TestLoadImbalance:
    def test_spread_per_phase(self, env):
        trace = Trace(env)
        trace.record("Sort", "gpu0", 0.0, end=1.0)
        trace.record("Sort", "gpu1", 0.0, end=3.0)
        low, high = load_imbalance(trace, "Sort")
        assert (low, high) == (1.0, 3.0)

    def test_missing_phase(self, env):
        assert load_imbalance(Trace(env), "Merge") == (0.0, 0.0)

    def test_remote_gpus_straggle_on_ac922(self, rng):
        # Figure 2's NUMA cliff shows up as HtoD imbalance: GPUs behind
        # the X-Bus take much longer to receive their chunks.
        from repro.hw import ibm_ac922
        from repro.runtime import Machine
        from repro.sort import p2p_sort

        machine = Machine(ibm_ac922(), scale=20_000,
                          fast_functional=True)
        data = rng.integers(0, 1 << 30, size=100_000).astype(np.int32)
        p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3))
        low, high = load_imbalance(machine.trace, "HtoD")
        assert high > 2.0 * low
