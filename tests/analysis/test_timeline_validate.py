"""Unit tests of the Chrome trace export and output validation."""

import json

import numpy as np
import pytest

from repro.analysis.timeline import to_chrome_trace, write_chrome_trace
from repro.analysis.validate import (
    ValidationError,
    first_inversion,
    is_permutation,
    is_sorted,
    verify_sort,
)
from repro.sim.trace import Trace


class TestChromeTrace:
    @pytest.fixture
    def trace(self, env):
        trace = Trace(env)
        trace.record("HtoD", "gpu0", 0.0, end=0.1, bytes=4e9)
        trace.record("Sort", "gpu0", 0.1, end=0.2, bytes=4e9)
        trace.record("HtoD", "gpu1", 0.0, end=0.15, bytes=4e9)
        return trace

    def test_one_row_per_actor(self, trace):
        payload = to_chrome_trace(trace)
        names = [e for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"]
        assert {e["args"]["name"] for e in names} == {"gpu0", "gpu1"}

    def test_slices_carry_timing_in_microseconds(self, trace):
        payload = to_chrome_trace(trace)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 3
        sort_slice = next(e for e in slices if e["name"] == "Sort")
        assert sort_slice["ts"] == pytest.approx(0.1e6)
        assert sort_slice["dur"] == pytest.approx(0.1e6)
        assert sort_slice["args"]["bytes"] == 4e9

    def test_write_round_trips_as_json(self, trace, tmp_path):
        path = write_chrome_trace(trace, str(tmp_path / "trace.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) >= 3

    def test_sort_run_produces_exportable_trace(self, dgx, rng):
        from repro.sort import p2p_sort

        data = rng.integers(0, 100, size=1024).astype(np.int32)
        p2p_sort(dgx, data, gpu_ids=(0, 2))
        payload = to_chrome_trace(dgx.trace)
        phases = {e["name"] for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert {"HtoD", "Sort", "Merge", "DtoH"} <= phases


class TestValidation:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.empty(0, np.int32))
        assert is_sorted(np.array([5]))

    def test_first_inversion(self):
        assert first_inversion(np.array([1, 3, 2, 4])) == 1
        assert first_inversion(np.array([1, 2, 3])) == -1

    def test_is_permutation(self):
        a = np.array([3, 1, 2], np.int32)
        assert is_permutation(a, np.array([1, 2, 3], np.int32))
        assert not is_permutation(a, np.array([1, 2, 4], np.int32))
        assert not is_permutation(a, np.array([1, 2], np.int32))
        assert not is_permutation(a, np.array([1, 2, 3], np.int64))

    def test_verify_sort_passes_good_output(self, rng):
        data = rng.integers(0, 100, size=500).astype(np.int32)
        verify_sort(data, np.sort(data))

    def test_verify_sort_catches_unsortedness(self):
        with pytest.raises(ValidationError, match="not sorted"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 3, 2]))

    def test_verify_sort_catches_lost_keys(self):
        with pytest.raises(ValidationError, match="permutation"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 2, 4]))

    def test_verify_sort_catches_size_change(self):
        with pytest.raises(ValidationError, match="elements"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 2]))
