"""Unit tests of the Chrome trace export and output validation."""

import json

import numpy as np
import pytest

from repro.analysis.timeline import to_chrome_trace, write_chrome_trace
from repro.analysis.validate import (
    ValidationError,
    first_inversion,
    is_permutation,
    is_sorted,
    verify_sort,
)
from repro.sim.trace import Trace


class TestChromeTrace:
    @pytest.fixture
    def trace(self, env):
        trace = Trace(env)
        trace.record("HtoD", "gpu0", 0.0, end=0.1, bytes=4e9)
        trace.record("Sort", "gpu0", 0.1, end=0.2, bytes=4e9)
        trace.record("HtoD", "gpu1", 0.0, end=0.15, bytes=4e9)
        return trace

    def test_one_row_per_actor(self, trace):
        payload = to_chrome_trace(trace)
        names = [e for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"]
        assert {e["args"]["name"] for e in names} == {"gpu0", "gpu1"}

    def test_slices_carry_timing_in_microseconds(self, trace):
        payload = to_chrome_trace(trace)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 3
        sort_slice = next(e for e in slices if e["name"] == "Sort")
        assert sort_slice["ts"] == pytest.approx(0.1e6)
        assert sort_slice["dur"] == pytest.approx(0.1e6)
        assert sort_slice["args"]["bytes"] == 4e9

    def test_write_round_trips_as_json(self, trace, tmp_path):
        path = write_chrome_trace(trace, str(tmp_path / "trace.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) >= 3

    def test_sort_run_produces_exportable_trace(self, dgx, rng):
        from repro.sort import p2p_sort

        data = rng.integers(0, 100, size=1024).astype(np.int32)
        p2p_sort(dgx, data, gpu_ids=(0, 2))
        payload = to_chrome_trace(dgx.trace)
        phases = {e["name"] for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert {"HtoD", "Sort", "Merge", "DtoH"} <= phases


class TestObservabilitySchema:
    """Recorder-enriched export: nesting, counters, fault markers."""

    @pytest.fixture
    def recorded(self, rng):
        from repro.hw import ibm_ac922
        from repro.runtime import Machine
        from repro.sort import het_sort

        machine = Machine(ibm_ac922(), scale=100_000)
        recorder = machine.enable_observability()
        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)
        het_sort(machine, data)
        return machine, recorder

    def test_spans_carry_hierarchy_in_args(self, recorded):
        machine, recorder = recorded
        payload = to_chrome_trace(machine.trace, recorder=recorder)
        root = next(e for e in payload["traceEvents"]
                    if e.get("name") == "HetSort")
        assert root["args"]["parent"] is None
        assert root["cname"] == "vsync_highlight_color"
        children = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"
                    and e["args"].get("parent") == root["args"]["id"]]
        assert children

    def test_flow_slices_nest_on_their_parent_spans_row(self, recorded):
        machine, recorder = recorded
        payload = to_chrome_trace(machine.trace, recorder=recorder)
        events = payload["traceEvents"]
        span_rows = {e["args"]["id"]: e["tid"] for e in events
                     if e["ph"] == "X" and e.get("cat") == "sim"
                     and e["args"]["id"]}
        flows = [e for e in events if e.get("cat") == "flow"
                 and e["ph"] == "X"]
        assert flows
        nested = [e for e in flows if e["args"]["parent"] is not None]
        assert nested
        for flow in nested:
            assert flow["tid"] == span_rows[flow["args"]["parent"]]
            assert flow["cname"] == "rail_load"
            assert flow["args"]["links"]

    def test_counter_tracks_per_link_and_active_flows(self, recorded):
        machine, recorder = recorded
        payload = to_chrome_trace(machine.trace, recorder=recorder)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "bw xbus_0_1.fwd" in names or "bw xbus_0_1.rev" in names
        assert "active flows" in names
        for counter in counters:
            assert set(counter["args"]) <= {"GB/s", "flows"}

    def test_fault_markers_land_on_the_faults_row(self, rng):
        from repro.faults.plan import FaultPlan
        from repro.hw import ibm_ac922
        from repro.runtime import Machine
        from repro.sort import het_sort

        spec = ibm_ac922()
        machine = Machine(spec, scale=100_000)
        recorder = machine.enable_observability()
        machine.install_faults(FaultPlan.generate(
            spec, seed=3, intensity=1.0, horizon=0.2))
        data = rng.integers(0, 1 << 30, size=4096).astype(np.int32)
        het_sort(machine, data)
        payload = to_chrome_trace(machine.trace, recorder=recorder)
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "g" and e.get("cat") == "fault"
                   for e in instants)
        fault_tid = instants[0]["tid"]
        row_names = {e["tid"]: e["args"]["name"] for e in events
                     if e.get("name") == "thread_name"}
        assert row_names[fault_tid] == "faults"
        ranges = [e for e in events if e.get("cat") == "fault"
                  and e["ph"] == "X"]
        for window in ranges:
            assert window["tid"] == fault_tid
            assert window["dur"] >= 0

    def test_recorded_run_round_trips_through_json(self, recorded,
                                                   tmp_path):
        machine, recorder = recorded
        path = write_chrome_trace(machine.trace,
                                  str(tmp_path / "trace.json"),
                                  label="het@ac922", recorder=recorder)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["otherData"]["source"] == "het@ac922"
        direct = to_chrome_trace(machine.trace, label="het@ac922",
                                 recorder=recorder)
        # JSON round-trip only changes tuples to lists; normalize and
        # compare whole documents.
        assert loaded == json.loads(json.dumps(direct))

    def test_export_without_recorder_is_unchanged(self, recorded):
        machine, recorder = recorded
        bare = to_chrome_trace(machine.trace)
        enriched = to_chrome_trace(machine.trace, recorder=recorder)
        assert len(bare["traceEvents"]) < len(enriched["traceEvents"])
        assert not any(e.get("cat") == "flow"
                       for e in bare["traceEvents"])


class TestValidation:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.empty(0, np.int32))
        assert is_sorted(np.array([5]))

    def test_first_inversion(self):
        assert first_inversion(np.array([1, 3, 2, 4])) == 1
        assert first_inversion(np.array([1, 2, 3])) == -1

    def test_is_permutation(self):
        a = np.array([3, 1, 2], np.int32)
        assert is_permutation(a, np.array([1, 2, 3], np.int32))
        assert not is_permutation(a, np.array([1, 2, 4], np.int32))
        assert not is_permutation(a, np.array([1, 2], np.int32))
        assert not is_permutation(a, np.array([1, 2, 3], np.int64))

    def test_verify_sort_passes_good_output(self, rng):
        data = rng.integers(0, 100, size=500).astype(np.int32)
        verify_sort(data, np.sort(data))

    def test_verify_sort_catches_unsortedness(self):
        with pytest.raises(ValidationError, match="not sorted"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 3, 2]))

    def test_verify_sort_catches_lost_keys(self):
        with pytest.raises(ValidationError, match="permutation"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 2, 4]))

    def test_verify_sort_catches_size_change(self):
        with pytest.raises(ValidationError, match="elements"):
            verify_sort(np.array([1, 2, 3]), np.array([1, 2]))
