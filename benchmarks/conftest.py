"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper table/figure from the calibrated
simulation.  pytest-benchmark times the regeneration itself (the host
cost of the simulation, useful for tracking the simulator's speed);
the *reproduction* quality is asserted against the paper's numbers and
attached to ``benchmark.extra_info``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import math

#: Worst acceptable multiplicative deviation from a paper number.
TOLERANCE = 1.25


def within(measured: float, reference: float,
           tolerance: float = TOLERANCE) -> bool:
    """Whether measured/reference deviates by less than ``tolerance``."""
    return math.exp(abs(math.log(measured / reference))) < tolerance


def assert_rows_within(rows, tolerance: float = TOLERANCE) -> None:
    """Check every (label, measured, paper) row with a reference value."""
    failures = [
        f"{label}: {measured:.2f} vs paper {reference:.2f}"
        for label, measured, reference in rows
        if reference is not None and not within(measured, reference,
                                                tolerance)
    ]
    assert not failures, "; ".join(failures)


def once(benchmark, fn, *args, **kwargs):
    """Run a benchmark exactly once (simulations are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
