"""Extension: key-value record sorting cost across the algorithms.

The paper sorts bare keys; database rows carry payloads.  This
benchmark quantifies what attaching a payload costs each algorithm —
every copy, swap, exchange and merge moves the extra bytes, so the
slowdown should track the record/key byte ratio wherever transfers
dominate.
"""

import numpy as np
from conftest import once

from repro.bench.report import Table
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sort import het_sort, p2p_sort, rp_sort

KEYS = 100_000
SCALE = 2e9 / KEYS     # 2B records


def _run(sorter, values):
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 30, size=KEYS).astype(np.int32)
    machine = Machine(dgx_a100(), scale=SCALE, fast_functional=True)
    return sorter(machine, keys, values=values).duration


def test_ext_key_value_overhead(benchmark):
    def measure():
        values = np.arange(KEYS, dtype=np.int64)
        return {
            name: (_run(sorter, None), _run(sorter, values))
            for name, sorter in (("p2p", p2p_sort), ("het", het_sort),
                                 ("rp", rp_sort))
        }

    results = once(benchmark, measure)
    table = Table(["algorithm", "keys only [s]", "key+8B value [s]",
                   "slowdown"],
                  title="Extension: payload cost, 2B records on the "
                        "DGX A100 (8 GPUs)")
    for name, (plain, with_values) in results.items():
        table.add_row(name, f"{plain:.3f}", f"{with_values:.3f}",
                      f"{with_values / plain:.2f}x")
    table.print()
    for name, (plain, with_values) in results.items():
        # int32 + int64 records are 3x the bytes; transfer-bound
        # algorithms should land near 3x, never below 2x.
        assert 2.0 < with_values / plain < 3.5, name
    benchmark.extra_info["slowdowns"] = {
        name: with_values / plain
        for name, (plain, with_values) in results.items()}
