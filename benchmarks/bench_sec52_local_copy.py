"""Section 5.2: device-local copies vs P2P interconnect transfers."""

from conftest import once, within

from repro.bench.experiments.local_copy import (
    PAPER_RATIOS,
    measure,
    run_local_copy,
)


def test_sec52_local_copy_ratios(benchmark):
    rows = once(benchmark, measure)
    run_local_copy().print()
    paper = {(s, p): r for s, p, r in PAPER_RATIOS}
    for system, path, local, remote, ratio in rows:
        assert local > remote, system
        assert within(ratio, paper[(system, path)], tolerance=1.15), system
    benchmark.extra_info["ratios"] = {s: r for s, _, _, _, r in rows}
