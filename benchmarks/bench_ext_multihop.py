"""Extension (Section 7): multi-hop P2P routing on the DELTA D22x.

The paper's future-work suggestion, implemented and quantified: forward
host-staged P2P swaps through relay GPUs over NVLink.
"""

import numpy as np
from conftest import once

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS, make_keys
from repro.hw import delta_d22x
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span
from repro.runtime.multihop import copy_multihop
from repro.sort import P2PConfig, p2p_sort


def _transfer_rate(use_relay: bool) -> float:
    machine = Machine(delta_d22x(), scale=1000, fast_functional=True)
    src = machine.device(0).alloc(1_000_000, np.int32)
    dst = machine.device(3).alloc(1_000_000, np.int32)

    def run():
        if use_relay:
            yield from copy_multihop(machine, span(dst), span(src),
                                     relays=[2])
        else:
            yield from copy_async(machine, span(dst), span(src))

    machine.run(run())
    return 4e9 / machine.now / 1e9


def test_ext_multihop_transfer_rate(benchmark):
    relayed = once(benchmark, _transfer_rate, True)
    staged = _transfer_rate(False)
    print(f"GPU0 -> GPU3 on the DELTA: host-staged {staged:.1f} GB/s, "
          f"relayed via GPU2 {relayed:.1f} GB/s "
          f"({relayed / staged:.1f}x)")
    # Host-staged lands near the paper's 9 GB/s; the relay path should
    # approach the 48 GB/s NVLink bottleneck (pipelining overhead aside).
    assert staged < 10.0
    assert relayed > 3.5 * staged
    benchmark.extra_info["gbps"] = {"staged": staged, "relayed": relayed}


def test_ext_multihop_sort_speedup(benchmark):
    data = make_keys(n=PHYSICAL_KEYS)
    scale = 2e9 / PHYSICAL_KEYS

    def run(multihop: bool):
        machine = Machine(delta_d22x(), scale=scale, fast_functional=True)
        return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                        config=P2PConfig(multihop=multihop))

    relayed = once(benchmark, run, True)
    staged = run(False)
    print(f"DELTA 4-GPU P2P sort, 2B keys: staged {staged.duration:.3f} s, "
          f"multihop {relayed.duration:.3f} s")
    assert np.array_equal(relayed.output, staged.output)
    assert relayed.duration < staged.duration
    benchmark.extra_info["seconds"] = {
        "staged": staged.duration, "multihop": relayed.duration}
