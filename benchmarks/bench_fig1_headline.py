"""Figure 1: sorting 16 GB on the DGX A100 - CPU vs GPUs."""

from conftest import once, within

from repro.bench.experiments.sort_scaling import (
    PAPER_FIG1,
    cpu_sort_duration,
    run_fig1,
    sort_duration,
)


def test_fig1_headline_comparison(benchmark):
    table = once(benchmark, run_fig1)
    table.print()
    measured = {
        "PARADIS (CPU)": cpu_sort_duration("dgx-a100", 4.0, "paradis"),
        "Thrust (1 GPU)": sort_duration("dgx-a100", "het", 1, 4.0),
        "P2P sort (2 GPUs)": sort_duration("dgx-a100", "p2p", 2, 4.0),
        "P2P sort (4 GPUs)": sort_duration("dgx-a100", "p2p", 4, 4.0),
        "HET sort (2 GPUs)": sort_duration("dgx-a100", "het", 2, 4.0),
        "HET sort (4 GPUs)": sort_duration("dgx-a100", "het", 4, 4.0),
    }
    for label, value in measured.items():
        assert within(value, PAPER_FIG1[label]), label
    # Orderings of the headline bar chart.
    assert measured["P2P sort (4 GPUs)"] < measured["P2P sort (2 GPUs)"] \
        < measured["Thrust (1 GPU)"] < measured["PARADIS (CPU)"]
    assert measured["P2P sort (2 GPUs)"] < measured["HET sort (2 GPUs)"]
    benchmark.extra_info["seconds"] = measured
