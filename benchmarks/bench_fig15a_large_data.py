"""Figure 15a: HET sort approaches for out-of-core data."""

from conftest import once, within

from repro.bench.experiments.large_data import (
    het_variant_series,
    run_fig15a,
)


def test_fig15a_het_variants(benchmark):
    sizes = (10, 20, 30, 40, 50, 60)
    series = once(benchmark, het_variant_series, "dgx-a100", 8, sizes)
    run_fig15a(billions_list=sizes).print()
    at_60 = {name: values[-1] for name, values in series.items()}
    # 2n and 3n perform the same without eager merging (Section 6.2).
    assert within(at_60["2n"], at_60["3n"], tolerance=1.1)
    # Eager merging worsens performance 1.5-1.75x (we accept >= 1.25x).
    assert at_60["2n + EM"] / at_60["2n"] > 1.25
    assert at_60["3n + EM"] / at_60["3n"] > 1.25
    # All variants scale linearly with the data size.
    assert within(series["2n"][-1] / series["2n"][1], 3.0, tolerance=1.15)
    benchmark.extra_info["seconds_at_60B"] = at_60
