"""Ablations of the design choices DESIGN.md calls out."""

from conftest import once, within

from repro.bench.experiments.ablations import (
    gpu_order_rows,
    overlap_value_rows,
    pivot_rows,
    run_gpu_order,
    run_overlap_value,
    run_pivot_ablation,
    run_swap_ablation,
    swap_overlap_rows,
)


def test_ablation_gpu_order(benchmark):
    def measure():
        return {system: gpu_order_rows(system)
                for system in ("ibm-ac922", "delta-d22x")}

    rows = once(benchmark, measure)
    for table in run_gpu_order():
        table.print()
    ac922 = {label: d for label, d in rows["ibm-ac922"]}
    # Section 5.4: (0, 2, 1, 3) performs worse on the AC922.
    assert min(d for label, d in ac922.items() if "(0, 2, 1, 3)" in label) \
        > min(d for label, d in ac922.items() if "(0, 1, 2, 3)" in label)
    # On the DELTA, the optimizer's order beats the paper's default.
    delta = rows["delta-d22x"]
    optimizer = min(d for label, d in delta if "optimizer" in label)
    default = next(d for label, d in delta if label.startswith("(0, 1, 2, 3)"))
    assert optimizer < default


def test_ablation_pivot_volume(benchmark):
    rows = once(benchmark, pivot_rows)
    run_pivot_ablation().print()
    volumes = {dist: volume for dist, _, _, volume in rows}
    # The leftmost pivot eliminates P2P traffic on sorted data, nearly
    # eliminates it on nearly-sorted data (1% disorder), and moves the
    # maximum on reverse-sorted data.
    assert volumes["sorted"] == 0.0
    assert volumes["nearly-sorted"] < 0.05 * volumes["uniform"]
    assert volumes["reverse-sorted"] > volumes["uniform"] > 0


def test_ablation_out_of_place_swap(benchmark):
    rows = once(benchmark, swap_overlap_rows)
    run_swap_ablation().print()
    for system, overlapped, serialized in rows:
        # The overlapped swap is never slower; it matters most where
        # the P2P path is slow relative to the local copy.
        assert overlapped <= serialized * 1.001, system
    ac922 = next(r for r in rows if r[0] == "ibm-ac922")
    assert ac922[2] / ac922[1] > 1.05


def test_ablation_copy_compute_overlap(benchmark):
    rows = once(benchmark, overlap_value_rows)
    run_overlap_value().print()
    for system, _billions, two_n, three_n in rows:
        # Section 6.2: on modern systems the 3n overlap buys at most a
        # marginal improvement; both approaches land close together.
        assert within(three_n, two_n, tolerance=1.25), system
