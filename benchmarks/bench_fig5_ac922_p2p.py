"""Figure 5: P2P data transfers on the IBM AC922."""

from conftest import assert_rows_within, once

from repro.bench.experiments import transfers_p2p


def test_fig5_ac922_p2p_transfers(benchmark):
    rows = once(benchmark, transfers_p2p.measure_p2p, "ibm-ac922")
    transfers_p2p.run_fig5().print()
    assert_rows_within(rows)
    values = {label: measured for label, measured, _ in rows}
    # Direct NVLink pairs reach ~72 GB/s; X-Bus-staged pairs less than
    # half of that; the 4-GPU mirrored pattern collapses onto the X-Bus.
    assert values["serial 0->1"] / values["serial 0->2"] > 2.0
    assert values["parallel 0<->1"] / values["parallel 0<->3, 1<->2"] > 2.5
    benchmark.extra_info["gbps"] = values
