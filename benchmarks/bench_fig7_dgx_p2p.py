"""Figure 7: P2P data transfers on the DGX A100 (NVSwitch)."""

from conftest import assert_rows_within, once, within

from repro.bench.experiments import transfers_p2p


def test_fig7_dgx_p2p_transfers(benchmark):
    rows = once(benchmark, transfers_p2p.measure_p2p, "dgx-a100")
    transfers_p2p.run_fig7().print()
    assert_rows_within(rows)
    values = {label: measured for label, measured, _ in rows}
    # NVSwitch scales all-to-all near-linearly (Section 4.3).
    assert within(values["parallel 4 pairs (8 GPUs)"],
                  4 * values["parallel 0<->1"], tolerance=1.1)
    benchmark.extra_info["gbps"] = values
