"""Figure 3: CPU-GPU data transfers on the DELTA D22x."""

from conftest import assert_rows_within, once

from repro.bench.experiments import transfers_cpu_gpu


def test_fig3_delta_cpu_gpu_transfers(benchmark):
    rows = once(benchmark, transfers_cpu_gpu.measure_cpu_gpu, "delta-d22x")
    transfers_cpu_gpu.run_fig3().print()
    assert_rows_within(rows)
    values = {label: measured for label, measured, _ in rows}
    # No NUMA effects over PCIe 3.0 (Section 4.2)...
    assert abs(values["serial {0} htod"] - values["serial {2} htod"]) < 0.5
    # ...and parallel copies scale 4x thanks to exclusive switches.
    scaling = values["parallel (0,1,2,3) htod"] / values["serial {0} htod"]
    assert 3.6 < scaling < 4.2
    benchmark.extra_info["gbps"] = values
