"""Section 6.3: sorting different key data types (8 GB per run)."""

from conftest import once

from repro.bench.experiments.datatypes import (
    PAPER_RATIO_BANDS,
    measure,
    run_datatypes,
    width_ratio,
)


def test_sec63_datatype_ratios(benchmark):
    def both():
        return {system: measure(system)
                for system in ("dgx-a100", "ibm-ac922")}

    durations = once(benchmark, both)
    for table in run_datatypes():
        table.print()
    for system, (lo, hi) in PAPER_RATIO_BANDS.items():
        ratio = width_ratio(durations[system])
        assert lo - 0.03 <= ratio <= hi + 0.03, (system, ratio)
    # Same-width types behave identically (radix key transforms); tiny
    # residuals come from distribution-dependent pivot positions.
    for system in durations:
        values = durations[system]
        assert abs(values["int"] / values["float"] - 1) < 1e-3
        assert abs(values["long"] / values["double"] - 1) < 1e-3
    benchmark.extra_info["ratios"] = {
        system: width_ratio(values) for system, values in durations.items()}
