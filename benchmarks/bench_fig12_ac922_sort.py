"""Figure 12: multi-GPU sort performance on the IBM AC922."""

from conftest import once, within

from repro.bench.experiments.sort_scaling import (
    PAPER_TOTALS_2B,
    breakdown_table,
    scaling_series,
    sort_duration,
    sort_run,
)


def _totals(system):
    return {
        algo: {g: sort_duration(system, algo, g, 2.0)
               for g in PAPER_TOTALS_2B[(system, algo)]}
        for algo in ("p2p", "het")
    }


def test_fig12_ac922_totals_and_breakdown(benchmark):
    measured = once(benchmark, _totals, "ibm-ac922")
    for algo in ("p2p", "het"):
        breakdown_table("ibm-ac922", algo, (1, 2, 4)).print()
        for gpus, value in measured[algo].items():
            paper = PAPER_TOTALS_2B[("ibm-ac922", algo)][gpus]
            assert within(value, paper), (algo, gpus)
    # Two GPUs win; four lose to two (X-Bus-bound merge, Section 6.1.1).
    assert measured["p2p"][2] < measured["p2p"][1]
    assert measured["p2p"][4] > measured["p2p"][2]
    # P2P beats HET on the NVLink pair, ties on four GPUs.
    assert measured["p2p"][2] < measured["het"][2]
    benchmark.extra_info["seconds"] = measured


def test_fig12_scaling_is_linear_in_keys(benchmark):
    series = once(benchmark, scaling_series, "ibm-ac922", "p2p", (2,),
                  (1.0, 2.0, 4.0))
    points = dict(series[2])
    assert within(points[4.0] / points[1.0], 4.0, tolerance=1.1)


def test_fig12_merge_fraction_two_gpus(benchmark):
    result = once(benchmark, sort_run, "ibm-ac922", "p2p", 2, 2.0)
    # Figure 12a: the merge phase is ~20% of the 2-GPU total.
    assert 0.1 < result.phase_fraction("Merge") < 0.3
