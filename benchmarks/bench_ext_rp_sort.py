"""Extension (Section 7): the radix-partitioning multi-GPU sort.

Quantifies the paper's closing proposal: partition once, exchange once
all-to-all, sort locally.  Expected shape: a clear win in interconnect
volume everywhere; an end-to-end win on NVSwitch (DGX A100); no win on
the X-Bus-bound AC922.
"""

from conftest import once

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS, make_keys
from repro.bench.report import Table
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.sort import p2p_sort, rp_sort


def _compare(system: str, gpus, billions: float = 2.0):
    data = make_keys(n=PHYSICAL_KEYS)
    scale = billions * 1e9 / PHYSICAL_KEYS
    spec = system_by_name(system)
    ids = spec.preferred_gpu_set(gpus)
    rp = rp_sort(Machine(system_by_name(system), scale=scale,
                         fast_functional=True), data, gpu_ids=ids)
    pp = p2p_sort(Machine(system_by_name(system), scale=scale,
                          fast_functional=True), data, gpu_ids=ids)
    return rp, pp


def test_ext_rp_sort_vs_p2p_sort(benchmark):
    def measure():
        return {
            ("dgx-a100", 8): _compare("dgx-a100", 8),
            ("dgx-a100", 4): _compare("dgx-a100", 4),
            ("ibm-ac922", 4): _compare("ibm-ac922", 4),
        }

    results = once(benchmark, measure)
    table = Table(["system", "GPUs", "RP sort [s]", "P2P sort [s]",
                   "RP volume [GB]", "P2P volume [GB]"],
                  title="Extension: single-exchange RP sort vs merge-based "
                        "P2P sort, 2B keys")
    for (system, gpus), (rp, pp) in results.items():
        table.add_row(system, gpus, f"{rp.duration:.3f}",
                      f"{pp.duration:.3f}", f"{rp.p2p_bytes / 1e9:.1f}",
                      f"{pp.p2p_bytes / 1e9:.1f}")
    table.print()

    rp8, pp8 = results[("dgx-a100", 8)]
    # One crossing per key: far less volume than the merge stages.
    assert rp8.p2p_bytes < 0.5 * pp8.p2p_bytes
    # End-to-end win on NVSwitch.
    assert rp8.duration < pp8.duration
    # No win where the exchange crosses the X-Bus.
    rp_x, pp_x = results[("ibm-ac922", 4)]
    assert rp_x.duration > 0.9 * pp_x.duration
    benchmark.extra_info["dgx8_speedup"] = pp8.duration / rp8.duration
