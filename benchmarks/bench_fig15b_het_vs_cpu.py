"""Figure 15b: HET sort vs CPU-only sorting for large data."""

from conftest import once, within

from repro.bench.experiments.large_data import PAPER_60B, run_fig15b
from repro.bench.experiments.sort_scaling import (
    cpu_sort_duration,
    sort_duration,
)


def test_fig15b_het_vs_paradis(benchmark):
    def measure():
        sizes = (10, 20, 30, 40, 50, 60)
        cpu = [cpu_sort_duration("dgx-a100", b, "paradis") for b in sizes]
        het = [sort_duration("dgx-a100", "het", 8, b) for b in sizes]
        return cpu, het

    cpu, het = once(benchmark, measure)
    run_fig15b().print()
    # HET sort stays ahead at every size; ~2.6x at 60B keys.
    assert all(h < c for h, c in zip(het, cpu))
    assert 2.0 < cpu[-1] / het[-1] < 4.0
    assert within(cpu[-1], PAPER_60B["PARADIS (CPU)"])
    assert within(het[-1], PAPER_60B["HET sort (8 GPUs)"], tolerance=1.3)
    benchmark.extra_info["speedup_at_60B"] = cpu[-1] / het[-1]
