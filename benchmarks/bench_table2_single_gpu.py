"""Table 2: single-GPU sorting primitives on the A100."""

from conftest import assert_rows_within, once

from repro.bench.experiments import table2


def test_table2_single_gpu_primitives(benchmark):
    rows = once(benchmark, table2.measure)
    table2.run_table2().print()
    assert_rows_within(rows, tolerance=1.05)
    durations = dict((name, ms) for name, ms, _ in rows)
    # Thrust and CUB share one LSB radix sort; both beat Stehle's MSB
    # sort (1.6x) and MGPU's merge sort (5.5x) - Section 5.1.
    assert durations["thrust"] == durations["cub"]
    assert durations["stehle"] / durations["thrust"] > 1.4
    assert durations["mgpu"] / durations["thrust"] > 4.5
    benchmark.extra_info["durations_ms"] = durations


def test_table2_v100_is_slower(benchmark):
    a100 = table2.sort_duration_ms("thrust", "a100")
    v100 = once(benchmark, table2.sort_duration_ms, "thrust", "v100")
    # Section 6.1.4: the A100 sorts almost twice as fast as the V100.
    assert 1.7 < v100 / a100 < 2.1
