"""Figure 6: P2P data transfers on the DELTA D22x."""

from conftest import assert_rows_within, once

from repro.bench.experiments import transfers_p2p


def test_fig6_delta_p2p_transfers(benchmark):
    rows = once(benchmark, transfers_p2p.measure_p2p, "delta-d22x")
    transfers_p2p.run_fig6().print()
    assert_rows_within(rows, tolerance=1.3)
    values = {label: measured for label, measured, _ in rows}
    # Host-staged P2P pays the double PCIe 3.0 toll (Section 4.3: 48
    # direct vs 9 GB/s staged).
    assert values["serial 0->1"] / values["serial 0->3"] > 4.0
    benchmark.extra_info["gbps"] = values
