"""Extensions: NUMA-aware placement and GPU-merged chunk groups.

Both answer open questions the paper's discussion raises:

* Section 7 blames the AC922's 4-GPU regression on the input residing
  in one NUMA node — staging each GPU's chunk locally quantifies that.
* Section 7 asks whether a P2P-based GPU merge helps for large data —
  merging each chunk group on the GPUs before the final CPU merge
  answers it where the CPU merge degrades most (the AC922).
"""

import numpy as np
from conftest import once

from repro.bench.report import Table
from repro.hw import ibm_ac922
from repro.runtime import Machine
from repro.sort import HetConfig, P2PConfig, het_sort, p2p_sort

KEYS = 100_000


def _p2p(billions, **cfg):
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 1 << 30, size=KEYS).astype(np.int32)
    machine = Machine(ibm_ac922(), scale=billions * 1e9 / KEYS,
                      fast_functional=True)
    return p2p_sort(machine, keys, gpu_ids=(0, 1, 2, 3),
                    config=P2PConfig(**cfg)).duration


def test_ext_numa_placement(benchmark):
    def measure():
        return {
            "node0 (paper)": _p2p(2.0),
            "numa-local + shuffle": _p2p(
                2.0, input_placement="numa-local"),
            "numa-local (pre-placed)": _p2p(
                2.0, input_placement="numa-local",
                charge_redistribution=False),
        }

    results = once(benchmark, measure)
    table = Table(["input placement", "4-GPU P2P sort [s]"],
                  title="Extension: NUMA-aware input placement, "
                        "IBM AC922, 2B keys")
    for label, seconds in results.items():
        table.add_row(label, f"{seconds:.3f}")
    table.print()
    assert results["numa-local (pre-placed)"] < \
        results["numa-local + shuffle"] < results["node0 (paper)"]
    # Pre-placed input turns 4 GPUs from a regression (worse than two)
    # into the AC922's best configuration.
    assert results["numa-local (pre-placed)"] < 0.7 * results["node0 (paper)"]
    benchmark.extra_info["seconds"] = results


def _het(billions, gpu_merge):
    rng = np.random.default_rng(6)
    keys = rng.integers(0, 1 << 30, size=KEYS).astype(np.int32)
    machine = Machine(ibm_ac922(), scale=billions * 1e9 / KEYS,
                      fast_functional=True)
    return het_sort(machine, keys, gpu_ids=(0, 1),
                    config=HetConfig(gpu_merge_groups=gpu_merge)).duration


def test_ext_gpu_merged_groups(benchmark):
    def measure():
        return {billions: (_het(billions, False), _het(billions, True))
                for billions in (16.0, 32.0)}

    results = once(benchmark, measure)
    table = Table(["keys [1e9]", "CPU-merged runs [s]",
                   "GPU-merged groups [s]", "speedup"],
                  title="Extension: P2P GPU merge per chunk group, "
                        "IBM AC922, 2 GPUs, out-of-core")
    for billions, (plain, merged) in results.items():
        table.add_row(f"{billions:g}", f"{plain:.2f}", f"{merged:.2f}",
                      f"{plain / merged:.2f}x")
    table.print()
    # The win grows with the sublist count the CPU merge is spared.
    plain32, merged32 = results[32.0]
    assert merged32 < 0.7 * plain32
    benchmark.extra_info["speedups"] = {
        b: plain / merged for b, (plain, merged) in results.items()}
