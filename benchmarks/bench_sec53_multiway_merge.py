"""Section 5.3: multiway merge memory-bandwidth saturation."""

from conftest import once

from repro.bench.experiments.merge_saturation import (
    merge_duration,
    run_merge_saturation,
    saturation_rows,
)
from repro.cpuprims.stream import (
    MERGE_SATURATION_HIGH,
    MERGE_SATURATION_LOW,
)


def test_sec53_merge_saturates_stream(benchmark):
    rows = once(benchmark, saturation_rows)
    run_merge_saturation().print()
    for system, standalone, het_rate, stream, saturation in rows:
        assert MERGE_SATURATION_LOW - 0.02 <= saturation \
            <= MERGE_SATURATION_HIGH + 0.02, (system, saturation)
        assert het_rate <= standalone * 1.01, system
    benchmark.extra_info["saturation"] = {r[0]: r[4] for r in rows}


def test_sec53_merge_duration_scales_with_n(benchmark):
    # n in {2, 8, 32} billion, k = 4 (the paper's grid, Section 5.3).
    t2 = once(benchmark, merge_duration, "dgx-a100", 2.0, 4)
    t8 = merge_duration("dgx-a100", 8.0, 4)
    t32 = merge_duration("dgx-a100", 32.0, 4)
    assert t8 / t2 == 4.0 or abs(t8 / t2 - 4.0) < 0.2
    assert abs(t32 / t8 - 4.0) < 0.2
