"""Figure 4: CPU-GPU data transfers on the DGX A100."""

from conftest import assert_rows_within, once

from repro.bench.experiments import transfers_cpu_gpu


def test_fig4_dgx_cpu_gpu_transfers(benchmark):
    rows = once(benchmark, transfers_cpu_gpu.measure_cpu_gpu, "dgx-a100")
    transfers_cpu_gpu.run_fig4().print()
    assert_rows_within(rows)
    values = {label: measured for label, measured, _ in rows}
    # The shared-PCIe-switch effect: pair (0,1) does not scale, (0,2)
    # doubles (Section 4.2).
    assert values["parallel (0,1) htod"] < 1.2 * values["serial {0-3} htod"]
    assert values["parallel (0,2) htod"] > 1.8 * values["serial {0-3} htod"]
    # No scaling from four to eight GPUs.
    assert values["parallel (0-7) htod"] < \
        1.15 * values["parallel (0,2,4,6) htod"]
    benchmark.extra_info["gbps"] = values
