"""Figure 2: CPU-GPU data transfers on the IBM AC922."""

from conftest import assert_rows_within, once

from repro.bench.experiments import transfers_cpu_gpu


def test_fig2_ac922_cpu_gpu_transfers(benchmark):
    rows = once(benchmark, transfers_cpu_gpu.measure_cpu_gpu, "ibm-ac922")
    transfers_cpu_gpu.run_fig2().print()
    assert_rows_within(rows)
    values = {label: measured for label, measured, _ in rows}
    # NUMA shape: local GPUs far outpace X-Bus-bound remote ones.
    assert values["serial {0} htod"] / values["serial {2} htod"] > 1.5
    assert values["parallel (0,1) htod"] / values["parallel (2,3) htod"] > 3.0
    benchmark.extra_info["gbps"] = values
