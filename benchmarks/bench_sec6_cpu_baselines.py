"""Section 6: choosing the CPU sort baseline."""

from conftest import once

from repro.bench.experiments.cpu_baselines import (
    PAPER_SIMD_CROSSOVER_BILLIONS,
    best_primitive,
    cpu_primitive_duration,
    run_cpu_baselines,
)


def test_sec6_paradis_beats_library_sorts(benchmark):
    def durations():
        return {
            system: {p: cpu_primitive_duration(system, p, 4.0)
                     for p in ("paradis", "gnu_parallel", "tbb", "std_par")}
            for system in ("ibm-ac922", "delta-d22x", "dgx-a100")
        }

    measured = once(benchmark, durations)
    for table in run_cpu_baselines():
        table.print()
    for system, values in measured.items():
        for library in ("gnu_parallel", "tbb", "std_par"):
            assert values["paradis"] < values[library], (system, library)


def test_sec6_simd_crossovers(benchmark):
    def picks():
        return {
            "dgx_small": best_primitive("dgx-a100", 1.0),
            "dgx_large": best_primitive("dgx-a100", 8.0),
            "delta_small": best_primitive("delta-d22x", 4.0),
            "delta_large": best_primitive("delta-d22x", 16.0),
            "ac922": best_primitive("ibm-ac922", 4.0),
        }

    chosen = once(benchmark, picks)
    # SIMD LSB wins below the crossover, PARADIS above (Section 6);
    # the AC922 cannot run the SIMD sort at all.
    assert chosen["dgx_small"] == "simd_lsb"
    assert chosen["dgx_large"] == "paradis"
    assert chosen["delta_small"] == "simd_lsb"
    assert chosen["delta_large"] == "paradis"
    assert chosen["ac922"] == "paradis"
    benchmark.extra_info["crossovers"] = PAPER_SIMD_CROSSOVER_BILLIONS
