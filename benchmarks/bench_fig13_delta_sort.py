"""Figure 13: multi-GPU sort performance on the DELTA D22x."""

from conftest import once, within

from repro.bench.experiments.sort_scaling import (
    PAPER_TOTALS_2B,
    breakdown_table,
    sort_duration,
    sort_run,
)


def test_fig13_delta_totals(benchmark):
    def measure():
        return {
            algo: {g: sort_duration("delta-d22x", algo, g, 2.0)
                   for g in (1, 2, 4)}
            for algo in ("p2p", "het")
        }

    measured = once(benchmark, measure)
    for algo in ("p2p", "het"):
        breakdown_table("delta-d22x", algo, (1, 2, 4)).print()
        for gpus, value in measured[algo].items():
            paper = PAPER_TOTALS_2B[("delta-d22x", algo)][gpus]
            assert within(value, paper), (algo, gpus)
    # Section 6.1.2: 1.86x for two GPUs, 2.1x for four over one.
    assert within(measured["p2p"][1] / measured["p2p"][2], 1.86,
                  tolerance=1.1)
    assert within(measured["p2p"][1] / measured["p2p"][4], 2.1,
                  tolerance=1.15)
    benchmark.extra_info["seconds"] = measured


def test_fig13_transfers_dominate(benchmark):
    result = once(benchmark, sort_run, "delta-d22x", "p2p", 1, 2.0)
    copies = (result.phase_durations["HtoD"]
              + result.phase_durations["DtoH"])
    # Figure 13a: PCIe 3.0 transfers are ~84% of the total.
    assert copies / result.duration > 0.75
