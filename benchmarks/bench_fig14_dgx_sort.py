"""Figure 14: multi-GPU sort performance on the DGX A100."""

from conftest import once, within

from repro.bench.experiments.sort_scaling import (
    PAPER_TOTALS_2B,
    breakdown_table,
    sort_duration,
    sort_run,
)


def test_fig14_dgx_totals(benchmark):
    def measure():
        return {
            algo: {g: sort_duration("dgx-a100", algo, g, 2.0)
                   for g in (1, 2, 4, 8)}
            for algo in ("p2p", "het")
        }

    measured = once(benchmark, measure)
    for algo in ("p2p", "het"):
        breakdown_table("dgx-a100", algo, (1, 2, 4, 8)).print()
        for gpus, value in measured[algo].items():
            paper = PAPER_TOTALS_2B[("dgx-a100", algo)][gpus]
            assert within(value, paper), (algo, gpus)
    # Section 6.1.3: 1.9x for two, 2.9x for four, ~3x for eight GPUs;
    # P2P sort wins over HET sort for every GPU count.
    assert within(measured["p2p"][1] / measured["p2p"][2], 1.9,
                  tolerance=1.1)
    assert within(measured["p2p"][1] / measured["p2p"][4], 2.9,
                  tolerance=1.25)
    for gpus in (2, 4, 8):
        assert measured["p2p"][gpus] < measured["het"][gpus]
    benchmark.extra_info["seconds"] = measured


def test_fig14_merge_stays_cheap_with_nvswitch(benchmark):
    result = once(benchmark, sort_run, "dgx-a100", "p2p", 8, 2.0)
    # Figure 14a: even on eight GPUs the NVSwitch merge is ~23%.
    assert result.phase_fraction("Merge") < 0.35


def test_fig14_eight_gpus_double_capacity(benchmark):
    # Eight GPUs sort twice the data of four in about the same time per
    # key (Section 6.1.3).
    four = once(benchmark, sort_duration, "dgx-a100", "p2p", 4, 8.0)
    eight = sort_duration("dgx-a100", "p2p", 8, 16.0)
    assert within(eight / four, 2.0, tolerance=1.2)
