"""Figure 16: sorting varying data distributions on the AC922."""

from conftest import once, within

from repro.bench.experiments.distributions import (
    PAPER_FIG16,
    measure,
    run_fig16,
)


def test_fig16_distribution_sensitivity(benchmark):
    rows = once(benchmark, measure)
    run_fig16().print()
    durations = {(algo, dist): value for algo, dist, value, _ in rows}
    for (algo, dist), value in durations.items():
        assert within(value, PAPER_FIG16[(algo, dist)]), (algo, dist)
    # P2P sort: sorted data is fastest, reverse-sorted slowest.
    assert durations[("p2p", "sorted")] < durations[("p2p", "uniform")]
    assert durations[("p2p", "reverse-sorted")] > \
        durations[("p2p", "uniform")]
    # HET sort is flat across distributions.
    het = [durations[("het", d)] for d in
           ("uniform", "normal", "sorted", "reverse-sorted",
            "nearly-sorted")]
    assert max(het) / min(het) < 1.05
    benchmark.extra_info["seconds"] = {f"{a}/{d}": v
                                       for (a, d), v in durations.items()}
