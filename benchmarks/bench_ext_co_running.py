"""Extension: co-running workloads (what exclusive usage is worth)."""

from conftest import once

from repro.bench.experiments.co_running import measure, run_co_running


def test_ext_co_running_interference(benchmark):
    results = once(benchmark, measure, "dgx-a100", 4)
    run_co_running("dgx-a100", 4).print()
    for algorithm in ("p2p", "het"):
        clean = results[(algorithm, "exclusive")]
        for scenario in ("memory scan (40 GB/s)", "copy stream (1 GPU)"):
            loaded = results[(algorithm, scenario)]
            # Neighbours always cost something, but never break the
            # run outright (bounded slowdown).
            assert clean < loaded < 3.0 * clean, (algorithm, scenario)
    benchmark.extra_info["slowdowns"] = {
        f"{a}/{s}": results[(a, s)] / results[(a, "exclusive")]
        for a in ("p2p", "het") for s in
        ("memory scan (40 GB/s)", "copy stream (1 GPU)")}
